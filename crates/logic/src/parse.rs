//! A small concrete syntax for predicates and terms.
//!
//! Used by the `.quals` qualifier files and `.mlq` specification files of
//! the driver, and convenient in tests. The grammar mirrors the paper's
//! notation with ASCII spellings:
//!
//! ```text
//! pred  ::= imp ('<=>' imp)*
//! imp   ::= or ('=>' or)*            (right associative)
//! or    ::= and ('||' and)*
//! and   ::= unit ('&&' unit)*
//! unit  ::= 'not' unit | atom
//! atom  ::= expr (relop expr)? | 'true' | 'false'
//! relop ::= '=' | '!=' | '<' | '<=' | '>' | '>=' | 'in' | 'subset'
//! expr  ::= term (('+'|'-') term)*
//! term  ::= factor (('*'|'/'|'mod') factor)*
//! factor::= int | ident | ident '(' expr,* ')' | '(' pred ')'
//!         | '-' factor | 'if' pred 'then' expr 'else' expr
//! ```
//!
//! The identifiers `VV` (the value variable ν), `_` / `_0`, `_1`, ...
//! (placeholders ★i), `empty`, `single`, `union`, `Sel`, `Upd`, `mem` are
//! interpreted specially. A parenthesized predicate that is just a term
//! coerces back to a term, so `(x + 1) * 2` parses as expected.

use crate::{Binop, Expr, Pred, Rel, Symbol};
use std::fmt;

/// An error produced while parsing predicate syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePredError {
    /// Explanation of the failure.
    pub msg: String,
    /// Byte offset in the input where the failure occurred.
    pub at: usize,
}

impl fmt::Display for ParsePredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParsePredError {}

/// Parses a predicate from its concrete syntax.
///
/// # Errors
///
/// Returns [`ParsePredError`] on malformed input or trailing tokens.
///
/// # Examples
///
/// ```
/// use dsolve_logic::parse_pred;
/// let p = parse_pred("0 < VV && _ <= VV").unwrap();
/// assert_eq!(p.to_string(), "((0 < VV) && (*0 <= VV))");
/// ```
pub fn parse_pred(input: &str) -> Result<Pred, ParsePredError> {
    let mut p = Parser::new(input);
    let pred = p.pred()?;
    p.skip_ws();
    if p.pos < p.src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(pred)
}

/// Parses a term from its concrete syntax.
///
/// # Errors
///
/// Returns [`ParsePredError`] on malformed input, trailing tokens, or if
/// the input is a relational predicate rather than a term.
pub fn parse_expr(input: &str) -> Result<Expr, ParsePredError> {
    let mut p = Parser::new(input);
    let e = p.expr()?;
    p.skip_ws();
    if p.pos < p.src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

/// Maximum grammar recursion depth. A hostile input of the shape
/// `((((…))))` or `not not not …` would otherwise overflow the stack —
/// an abort that no `catch_unwind` can isolate — so the parser refuses
/// with a typed error instead.
const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    next_star: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser {
            src: src.as_bytes(),
            pos: 0,
            next_star: 0,
            depth: 0,
        }
    }

    fn descend(&mut self) -> Result<(), ParsePredError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err("expression nesting exceeds the depth limit (256)"))
        } else {
            Ok(())
        }
    }

    fn err(&self, msg: &str) -> ParsePredError {
        ParsePredError {
            msg: msg.to_owned(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        let bytes = tok.as_bytes();
        if self.src[self.pos..].starts_with(bytes) {
            // Avoid eating a prefix of a longer operator or identifier.
            let next = self.src.get(self.pos + bytes.len()).copied();
            let tok_is_word = bytes[0].is_ascii_alphabetic() || bytes[0] == b'_';
            if tok_is_word {
                if let Some(c) = next {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' || c == b'#' {
                        return false;
                    }
                }
            } else if matches!(tok, "<" | ">" | "=" | "/") {
                // Don't let '<' match '<=' etc.
                if let Some(c) = next {
                    if c == b'=' || (tok == "=" && c == b'>') || (tok == "<" && c == b'>') {
                        return false;
                    }
                }
            }
            self.pos += bytes.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), ParsePredError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{tok}`")))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        let mut p = self.pos;
        if p < self.src.len() && (self.src[p].is_ascii_alphabetic() || self.src[p] == b'_') {
            p += 1;
            while p < self.src.len()
                && (self.src[p].is_ascii_alphanumeric()
                    || self.src[p] == b'_'
                    || self.src[p] == b'\''
                    || self.src[p] == b'#')
            {
                p += 1;
            }
            self.pos = p;
            Some(String::from_utf8_lossy(&self.src[start..p]).into_owned())
        } else {
            None
        }
    }

    fn pred(&mut self) -> Result<Pred, ParsePredError> {
        self.descend()?;
        let r = self.pred_inner();
        self.depth -= 1;
        r
    }

    fn pred_inner(&mut self) -> Result<Pred, ParsePredError> {
        let mut lhs = self.imp()?;
        while self.eat("<=>") {
            let rhs = self.imp()?;
            lhs = Pred::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn imp(&mut self) -> Result<Pred, ParsePredError> {
        let lhs = self.or()?;
        if self.eat("=>") {
            let rhs = self.imp()?;
            return Ok(Pred::Imp(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn or(&mut self) -> Result<Pred, ParsePredError> {
        let mut parts = vec![self.and()?];
        while self.eat("||") {
            parts.push(self.and()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().expect("len checked"))
        } else {
            Ok(Pred::Or(parts))
        }
    }

    fn and(&mut self) -> Result<Pred, ParsePredError> {
        let mut parts = vec![self.unit()?];
        while self.eat("&&") {
            parts.push(self.unit()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().expect("len checked"))
        } else {
            Ok(Pred::And(parts))
        }
    }

    fn unit(&mut self) -> Result<Pred, ParsePredError> {
        self.descend()?;
        let r = if self.eat("not") {
            self.unit().map(Pred::not)
        } else {
            self.atom()
        };
        self.depth -= 1;
        r
    }

    fn atom(&mut self) -> Result<Pred, ParsePredError> {
        // A leading paren may open either a nested predicate or a
        // parenthesized term; parse a predicate and continue as a term
        // only when it turns out to be one.
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let inner = self.pred()?;
            self.expect(")")?;
            let lhs = match inner {
                Pred::Term(e) => e,
                Pred::True => Expr::Bool(true),
                Pred::False => Expr::Bool(false),
                other => return Ok(other),
            };
            let lhs = self.term_continue(lhs)?;
            let lhs = self.expr_continue(lhs)?;
            return self.atom_continue(lhs);
        }
        let lhs = self.expr()?;
        self.atom_continue(lhs)
    }

    fn atom_continue(&mut self, lhs: Expr) -> Result<Pred, ParsePredError> {
        let rel = if self.eat("<=") {
            Some(Rel::Le)
        } else if self.eat(">=") {
            Some(Rel::Ge)
        } else if self.eat("!=") || self.eat("<>") {
            Some(Rel::Ne)
        } else if self.eat("=") {
            Some(Rel::Eq)
        } else if self.eat("<") {
            Some(Rel::Lt)
        } else if self.eat(">") {
            Some(Rel::Gt)
        } else if self.eat("in") {
            Some(Rel::In)
        } else if self.eat("subset") {
            Some(Rel::Sub)
        } else {
            None
        };
        match rel {
            Some(r) => {
                let rhs = self.expr()?;
                Ok(Pred::Atom(r, lhs, rhs))
            }
            None => match lhs {
                Expr::Bool(true) => Ok(Pred::True),
                Expr::Bool(false) => Ok(Pred::False),
                e => Ok(Pred::Term(e)),
            },
        }
    }

    fn expr(&mut self) -> Result<Expr, ParsePredError> {
        let lhs = self.term()?;
        self.expr_continue(lhs)
    }

    fn expr_continue(&mut self, mut lhs: Expr) -> Result<Expr, ParsePredError> {
        loop {
            if self.eat("+") {
                lhs = Expr::Binop(Binop::Add, Box::new(lhs), Box::new(self.term()?));
            } else if self.eat("-") {
                lhs = Expr::Binop(Binop::Sub, Box::new(lhs), Box::new(self.term()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParsePredError> {
        let lhs = self.factor()?;
        self.term_continue(lhs)
    }

    fn term_continue(&mut self, mut lhs: Expr) -> Result<Expr, ParsePredError> {
        loop {
            if self.eat("*") {
                lhs = Expr::Binop(Binop::Mul, Box::new(lhs), Box::new(self.factor()?));
            } else if self.eat("/") {
                lhs = Expr::Binop(Binop::Div, Box::new(lhs), Box::new(self.factor()?));
            } else if self.eat("mod") {
                lhs = Expr::Binop(Binop::Mod, Box::new(lhs), Box::new(self.factor()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, ParsePredError> {
        self.descend()?;
        let r = self.factor_inner();
        self.depth -= 1;
        r
    }

    fn factor_inner(&mut self) -> Result<Expr, ParsePredError> {
        self.skip_ws();
        match self.peek() {
            Some(b'-') => {
                self.pos += 1;
                // Fold negated literals so `-1` round-trips as a literal.
                match self.factor()? {
                    Expr::Int(v) => Ok(Expr::Int(-v)),
                    other => Ok(Expr::Neg(Box::new(other))),
                }
            }
            Some(b'(') => {
                self.pos += 1;
                // Parse a full predicate; coerce back to a term when it's
                // just a term.
                let p = self.pred()?;
                self.expect(")")?;
                match p {
                    Pred::Term(e) => Ok(e),
                    Pred::True => Ok(Expr::Bool(true)),
                    Pred::False => Ok(Expr::Bool(false)),
                    other => Err(ParsePredError {
                        msg: format!("predicate `{other}` used where a term is required"),
                        at: self.pos,
                    }),
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits");
                let v: i64 = text.parse().map_err(|_| self.err("integer overflow"))?;
                Ok(Expr::Int(v))
            }
            Some(_) => {
                if self.eat("if") {
                    let c = self.pred()?;
                    self.expect("then")?;
                    let t = self.expr()?;
                    self.expect("else")?;
                    let e = self.expr()?;
                    return Ok(Expr::Ite(Box::new(c), Box::new(t), Box::new(e)));
                }
                let Some(id) = self.ident() else {
                    return Err(self.err("expected a term"));
                };
                match id.as_str() {
                    "true" => return Ok(Expr::Bool(true)),
                    "false" => return Ok(Expr::Bool(false)),
                    "empty" => return Ok(Expr::SetEmpty),
                    "VV" => return Ok(Expr::nu()),
                    // Each bare `_` is an independent placeholder.
                    "_" => {
                        let i = self.next_star;
                        self.next_star += 1;
                        return Ok(Expr::Var(Symbol::star(i)));
                    }
                    _ => {}
                }
                if let Some(rest) = id.strip_prefix('_') {
                    if let Ok(i) = rest.parse::<usize>() {
                        return Ok(Expr::Var(Symbol::star(i)));
                    }
                }
                if self.peek() == Some(b'(') {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(b')') {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(",") {
                                break;
                            }
                        }
                    }
                    self.expect(")")?;
                    return self.builtin_app(&id, args);
                }
                Ok(Expr::Var(Symbol::new(&id)))
            }
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn builtin_app(&self, id: &str, mut args: Vec<Expr>) -> Result<Expr, ParsePredError> {
        let arity = |n: usize, args: &[Expr]| -> Result<(), ParsePredError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(ParsePredError {
                    msg: format!("`{id}` expects {n} argument(s), got {}", args.len()),
                    at: self.pos,
                })
            }
        };
        match id {
            "single" => {
                arity(1, &args)?;
                Ok(Expr::single(args.pop().expect("arity checked")))
            }
            "union" => {
                arity(2, &args)?;
                let b = args.pop().expect("arity checked");
                let a = args.pop().expect("arity checked");
                Ok(Expr::union(a, b))
            }
            "Sel" | "sel" => {
                arity(2, &args)?;
                let i = args.pop().expect("arity checked");
                let m = args.pop().expect("arity checked");
                Ok(Expr::sel(m, i))
            }
            "Upd" | "upd" => {
                arity(3, &args)?;
                let v = args.pop().expect("arity checked");
                let i = args.pop().expect("arity checked");
                let m = args.pop().expect("arity checked");
                Ok(Expr::upd(m, i, v))
            }
            _ => Ok(Expr::App(Symbol::new(id), args)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_qualifiers() {
        assert_eq!(parse_pred("0 < VV").unwrap().to_string(), "(0 < VV)");
        assert_eq!(parse_pred("_ <= VV").unwrap().to_string(), "(*0 <= VV)");
        assert_eq!(
            parse_pred("_0 <= VV && VV < _1").unwrap().to_string(),
            "((*0 <= VV) && (VV < *1))"
        );
    }

    #[test]
    fn parses_arith_with_precedence() {
        let p = parse_pred("x + 2 * y <= z").unwrap();
        assert_eq!(p.to_string(), "((x + (2 * y)) <= z)");
    }

    #[test]
    fn parses_measures_and_sets() {
        let p = parse_pred("elts(VV) = union(single(x), elts(xs))").unwrap();
        assert_eq!(
            p.to_string(),
            "(elts(VV) = union(single(x), elts(xs)))"
        );
        let q = parse_pred("x in elts(VV)").unwrap();
        assert_eq!(q.to_string(), "(x in elts(VV))");
    }

    #[test]
    fn parses_sel_upd() {
        let p = parse_pred("Sel(m, i) = 0 || VV = Upd(m, k, v)").unwrap();
        assert_eq!(
            p.to_string(),
            "((Sel(m, i) = 0) || (VV = Upd(m, k, v)))"
        );
    }

    #[test]
    fn parses_implication_right_assoc() {
        let p = parse_pred("a = 1 => b = 2 => c = 3").unwrap();
        assert_eq!(p.to_string(), "((a = 1) => ((b = 2) => (c = 3)))");
    }

    #[test]
    fn parses_ite_terms() {
        let e = parse_expr("if ht_l < ht_r then 1 + ht_r else 1 + ht_l").unwrap();
        assert!(matches!(e, Expr::Ite(_, _, _)));
    }

    #[test]
    fn parses_not_and_parens() {
        let p = parse_pred("not (x = y) && (z < 1 || true)").unwrap();
        assert_eq!(p.to_string(), "((x != y) && ((z < 1) || true))");
    }

    #[test]
    fn paren_term_coercion() {
        let p = parse_pred("(x + 1) * 2 = y").unwrap();
        assert_eq!(p.to_string(), "(((x + 1) * 2) = y)");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_pred("x = y zzz qq").is_err());
        assert!(parse_pred("x +").is_err());
        assert!(parse_expr("x < y").is_err());
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        let deep = format!("{}x{}", "(".repeat(100_000), ")".repeat(100_000));
        let e = parse_pred(&deep).unwrap_err();
        assert!(e.msg.contains("depth limit"), "{e}");
        let nots = format!("{} x = 1", "not ".repeat(100_000));
        assert!(parse_pred(&nots).is_err());
        // Reasonable nesting still parses.
        let ok = format!("{}x{}", "(".repeat(60), ")".repeat(60));
        assert!(parse_pred(&ok).is_ok());
    }

    #[test]
    fn integer_overflow_is_a_typed_error() {
        let e = parse_pred("x = 99999999999999999999999999").unwrap_err();
        assert!(e.msg.contains("overflow"), "{e}");
        assert!(e.at > 0);
    }

    #[test]
    fn boolean_terms() {
        let p = parse_pred("flag && ok(x)").unwrap();
        assert_eq!(p.to_string(), "(flag && ok(x))");
    }
}
