//! Sorts of the refinement logic.
//!
//! The paper embeds implication checks into the decidable combination EUFA
//! (equality + uninterpreted functions + linear arithmetic), extended with
//! McCarthy map operators (`Sel`/`Upd`) and a theory of finite sets for
//! `elts`-style measures. Each logical term carries one of these sorts.

use crate::Symbol;
use std::fmt;

/// The sort (logical type) of a term.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Mathematical integers (linear arithmetic).
    Int,
    /// Booleans.
    Bool,
    /// Finite sets built from `empty`, `single`, and `union`.
    Set,
    /// McCarthy maps (arrays) with `Sel`/`Upd`.
    Map,
    /// Uninterpreted individuals; carries a tag naming the source ML type
    /// (datatype values, type-variable instances, closures).
    ///
    /// Two `Obj` sorts with different tags are still *distinct* sorts: a
    /// qualifier placeholder of sort `Obj("list")` is never instantiated
    /// with a variable of sort `Obj("tree")`.
    Obj(Symbol),
}

impl Sort {
    /// A generic object sort used when the precise source type is unknown.
    pub fn obj() -> Sort {
        Sort::Obj(Symbol::new("obj"))
    }

    /// Whether terms of this sort may appear in arithmetic atoms.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Sort::Int)
    }

    /// Whether two sorts are compatible for placeholder instantiation and
    /// equality atoms.
    ///
    /// All `Obj` sorts are mutually compatible with each other (ML type
    /// variables erase to plain objects, so an `Obj("a")` qualifier must
    /// be allowed to meet an `Obj("list")` variable), but never with the
    /// interpreted sorts.
    pub fn compatible(&self, other: &Sort) -> bool {
        match (self, other) {
            (Sort::Obj(_), Sort::Obj(_)) => true,
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Int => write!(f, "int"),
            Sort::Bool => write!(f, "bool"),
            Sort::Set => write!(f, "set"),
            Sort::Map => write!(f, "map"),
            Sort::Obj(tag) => write!(f, "obj<{tag}>"),
        }
    }
}

/// The sort of an uninterpreted function (measure, selector, primitive).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuncSort {
    /// Argument sorts, in order.
    pub args: Vec<Sort>,
    /// Result sort.
    pub ret: Sort,
}

impl FuncSort {
    /// Creates a function sort.
    pub fn new(args: Vec<Sort>, ret: Sort) -> FuncSort {
        FuncSort { args, ret }
    }
}

impl fmt::Display for FuncSort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.args {
            write!(f, "{a} -> ")?;
        }
        write!(f, "{}", self.ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obj_sorts_are_mutually_compatible() {
        let a = Sort::Obj(Symbol::new("a"));
        let b = Sort::Obj(Symbol::new("list"));
        assert!(a.compatible(&b));
        assert!(!a.compatible(&Sort::Int));
        assert!(Sort::Int.compatible(&Sort::Int));
        assert!(!Sort::Set.compatible(&Sort::Map));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Sort::Int.to_string(), "int");
        assert_eq!(Sort::obj().to_string(), "obj<obj>");
        let fs = FuncSort::new(vec![Sort::obj()], Sort::Set);
        assert_eq!(fs.to_string(), "obj<obj> -> set");
    }

    #[test]
    fn numeric_check() {
        assert!(Sort::Int.is_numeric());
        assert!(!Sort::Bool.is_numeric());
        assert!(!Sort::Set.is_numeric());
    }
}
