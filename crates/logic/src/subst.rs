//! Pending substitutions.
//!
//! Liquid type inference manipulates *templates* whose refinements contain
//! liquid variables `κ` under **pending substitutions** `θ·κ` (§4.3 of the
//! paper): the substitution is recorded now and applied once `κ` is solved.
//! Polymorphic refinements use the same machinery for `α[y/x]` instances.

use crate::{Expr, Pred, Symbol};
use std::fmt;

/// A sequence of single-variable substitutions applied left-to-right.
///
/// `Subst` is ordered: `[e1/x]; [e2/y]` first replaces `x`, then `y` in the
/// result, which matters when `e1` mentions `y`.
///
/// # Examples
///
/// ```
/// use dsolve_logic::{Expr, Pred, Subst, Symbol};
/// let theta = Subst::new()
///     .then(Symbol::new("x"), Expr::var("y"))
///     .then(Symbol::new("y"), Expr::int(1));
/// let p = theta.apply_pred(&Pred::lt(Expr::var("x"), Expr::nu()));
/// assert_eq!(p.to_string(), "(1 < VV)");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Subst {
    pairs: Vec<(Symbol, Expr)>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// A one-element substitution `[with/var]`.
    pub fn single(var: Symbol, with: Expr) -> Subst {
        Subst {
            pairs: vec![(var, with)],
        }
    }

    /// Appends `[with/var]` to be applied after the existing pairs.
    #[must_use]
    pub fn then(mut self, var: Symbol, with: Expr) -> Subst {
        self.pairs.push((var, with));
        self
    }

    /// Concatenates two pending substitutions (`self` first).
    #[must_use]
    pub fn compose(mut self, later: &Subst) -> Subst {
        self.pairs.extend(later.pairs.iter().cloned());
        self
    }

    /// Whether no substitution is pending.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The pairs in application order.
    pub fn pairs(&self) -> &[(Symbol, Expr)] {
        &self.pairs
    }

    /// Applies the substitution to a term.
    pub fn apply_expr(&self, e: &Expr) -> Expr {
        let mut cur = e.clone();
        for (x, with) in &self.pairs {
            cur = cur.subst(*x, with);
        }
        cur
    }

    /// Applies the substitution to a predicate.
    pub fn apply_pred(&self, p: &Pred) -> Pred {
        let mut cur = p.clone();
        for (x, with) in &self.pairs {
            cur = cur.subst(*x, with);
        }
        cur
    }

    /// Telescopes a pending polytype-instance substitution (§5.1): when an
    /// `α[x1/x]` instance is itself instantiated at `[y/x2]`, the result is
    /// `α[y/x]` if `x1 = x2` and `α[x1/x]` otherwise.
    ///
    /// Operationally we keep substitutions eager, so telescoping falls out
    /// of ordinary left-to-right application; this helper exists for the
    /// liquid crate to normalize instance chains for display and hashing.
    #[must_use]
    pub fn telescope(&self) -> Subst {
        let mut out: Vec<(Symbol, Expr)> = Vec::new();
        for (x, with) in &self.pairs {
            // Rewrite earlier replacements by the later pair, mirroring
            // sequential application.
            for (_, w) in out.iter_mut() {
                *w = w.subst(*x, with);
            }
            out.push((*x, with.clone()));
        }
        Subst { pairs: out }
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (x, e) in &self.pairs {
            write!(f, "[{e}/{x}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_application_order_matters() {
        let x = Symbol::new("x");
        let y = Symbol::new("y");
        let theta = Subst::new()
            .then(x, Expr::var("y"))
            .then(y, Expr::int(7));
        // x -> y, then y -> 7, so x ends at 7.
        assert_eq!(theta.apply_expr(&Expr::var("x")), Expr::int(7));

        let theta_rev = Subst::new()
            .then(y, Expr::int(7))
            .then(x, Expr::var("y"));
        // y -> 7 happens first, then x -> y: x ends at the *variable* y.
        assert_eq!(theta_rev.apply_expr(&Expr::var("x")), Expr::var("y"));
    }

    #[test]
    fn compose_concatenates() {
        let a = Subst::single(Symbol::new("x"), Expr::int(1));
        let b = Subst::single(Symbol::new("y"), Expr::int(2));
        let c = a.compose(&b);
        assert_eq!(c.pairs().len(), 2);
        assert_eq!(c.apply_expr(&Expr::var("x").add(Expr::var("y"))).to_string(), "(1 + 2)");
    }

    #[test]
    fn telescope_resolves_chains() {
        // [x1/x][y/x1] telescopes so that x maps to y.
        let x = Symbol::new("x");
        let x1 = Symbol::new("x1");
        let theta = Subst::new()
            .then(x, Expr::var("x1"))
            .then(x1, Expr::var("y"));
        let t = theta.telescope();
        assert_eq!(t.apply_expr(&Expr::var("x")), Expr::var("y"));
        assert_eq!(t.pairs()[0].1, Expr::var("y"));
    }

    #[test]
    fn display_form() {
        let theta = Subst::single(Symbol::new("k"), Expr::var("i"));
        assert_eq!(theta.to_string(), "[i/k]");
    }
}
