//! Resource governance for the verification pipeline.
//!
//! Every layer of the stack — CDCL search, simplex branch-and-bound, set
//! saturation, the liquid fixpoint — can in principle run unboundedly
//! long on adversarial input. A [`Budget`] declares explicit limits for
//! each of those dimensions; the solvers check them cooperatively and,
//! when one runs out, surface a structured [`Exhaustion`] instead of
//! silently guessing an answer or hanging. The three-valued [`Outcome`]
//! replaces the old boolean notion of success: `Safe`, `Unsafe`, or
//! `Unknown` with a machine-readable reason.

use std::fmt;
use std::time::{Duration, Instant};

/// Pipeline phase in which a resource ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// NanoML parsing, resolution, or Hindley–Milner inference.
    Frontend,
    /// `.mlq` / `.quals` specification processing.
    Spec,
    /// Liquid constraint generation.
    ConstraintGen,
    /// The liquid fixpoint (iterative weakening) loop.
    Fixpoint,
    /// The final concrete-obligation checking pass.
    ObligationCheck,
    /// The top-level SMT query loop (lazy DPLL(T)).
    Smt,
    /// The CDCL propositional search.
    Sat,
    /// Simplex branch-and-bound over the integers.
    Simplex,
    /// Array-axiom / set-lemma saturation.
    Saturation,
    /// The job driver itself (e.g. a caught panic).
    Driver,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Frontend => "frontend",
            Phase::Spec => "spec",
            Phase::ConstraintGen => "constraint-gen",
            Phase::Fixpoint => "fixpoint",
            Phase::ObligationCheck => "obligation-check",
            Phase::Smt => "smt",
            Phase::Sat => "sat",
            Phase::Simplex => "simplex",
            Phase::Saturation => "saturation",
            Phase::Driver => "driver",
        };
        f.write_str(s)
    }
}

/// The resource that ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The wall-clock deadline expired.
    Deadline,
    /// The cap on SMT queries was reached.
    SmtQueries,
    /// The cap on theory conflicts within one SMT query was reached.
    TheoryConflicts,
    /// The cap on CDCL conflicts within one SAT search was reached.
    SatConflicts,
    /// The cap on branch-and-bound nodes was reached.
    BranchBoundNodes,
    /// The cap on saturation lemmas was reached.
    SaturationLemmas,
    /// The cap on liquid fixpoint iterations was reached.
    FixpointIterations,
    /// The job panicked and was isolated by the driver.
    Panic,
    /// An independent replay of the verdict's certificate failed, so the
    /// verdict was withdrawn rather than reported unchecked.
    Certification,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::Deadline => "deadline",
            Resource::SmtQueries => "smt-queries",
            Resource::TheoryConflicts => "theory-conflicts",
            Resource::SatConflicts => "sat-conflicts",
            Resource::BranchBoundNodes => "branch-bound-nodes",
            Resource::SaturationLemmas => "saturation-lemmas",
            Resource::FixpointIterations => "fixpoint-iterations",
            Resource::Panic => "panic",
            Resource::Certification => "certification",
        };
        f.write_str(s)
    }
}

/// A structured record of a budget running out: which resource, in which
/// phase, with an optional human-readable detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Exhaustion {
    /// Where in the pipeline the limit was hit.
    pub phase: Phase,
    /// Which limit was hit.
    pub resource: Resource,
    /// Free-form elaboration (e.g. the cap's value), may be empty.
    pub detail: String,
}

impl Exhaustion {
    /// Creates an exhaustion record without detail text.
    pub fn new(phase: Phase, resource: Resource) -> Exhaustion {
        Exhaustion {
            phase,
            resource,
            detail: String::new(),
        }
    }

    /// Creates an exhaustion record with detail text.
    pub fn with_detail(phase: Phase, resource: Resource, detail: impl Into<String>) -> Exhaustion {
        Exhaustion {
            phase,
            resource,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} exhausted in {}", self.resource, self.phase)?;
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

/// Three-valued verification outcome.
///
/// `Unknown` means the pipeline could neither prove nor refute the
/// program within its budget — it is *not* evidence of a bug, and it
/// must never silently degrade into `Safe`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every obligation was proven.
    Safe,
    /// At least one obligation failed with full budget available.
    Unsafe,
    /// A resource ran out (or a panic was isolated) before the verdict
    /// could be trusted.
    Unknown(Exhaustion),
}

impl Outcome {
    /// Whether the outcome is `Safe`.
    pub fn is_safe(&self) -> bool {
        matches!(self, Outcome::Safe)
    }

    /// Whether the outcome is `Unknown`.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Outcome::Unknown(_))
    }

    /// The exhaustion record, if the outcome is `Unknown`.
    pub fn exhaustion(&self) -> Option<&Exhaustion> {
        match self {
            Outcome::Unknown(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Safe => f.write_str("SAFE"),
            Outcome::Unsafe => f.write_str("UNSAFE"),
            Outcome::Unknown(e) => write!(f, "UNKNOWN: {e}"),
        }
    }
}

/// Declarative resource limits for one verification run.
///
/// The defaults reproduce the historical hardcoded caps (400 B&B nodes,
/// 200 saturation lemmas, 20 000 theory conflicts, 2 000 000 fixpoint
/// iterations) — but exhausting them now reports [`Exhaustion`] instead
/// of silently answering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit for the whole run; `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Cap on SMT queries issued by one run; `None` = unlimited.
    pub max_smt_queries: Option<u64>,
    /// Cap on theory conflicts within one SMT query.
    pub max_theory_conflicts: u64,
    /// Cap on CDCL conflicts within one propositional search.
    pub max_sat_conflicts: u64,
    /// Cap on branch-and-bound nodes per integer feasibility check.
    pub max_bb_nodes: u64,
    /// Cap on lemmas produced by one set-saturation pass.
    pub max_saturation_lemmas: u64,
    /// Cap on liquid fixpoint iterations.
    pub max_fixpoint_iterations: u64,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            timeout: None,
            max_smt_queries: None,
            max_theory_conflicts: 20_000,
            max_sat_conflicts: 2_000_000,
            max_bb_nodes: 400,
            max_saturation_lemmas: 200,
            max_fixpoint_iterations: 2_000_000,
        }
    }
}

impl Budget {
    /// The default budget with a wall-clock timeout.
    pub fn with_timeout(timeout: Duration) -> Budget {
        Budget {
            timeout: Some(timeout),
            ..Budget::default()
        }
    }

    /// Converts the relative timeout into an absolute deadline starting
    /// now. Returns `None` when the budget has no timeout.
    pub fn deadline_from_now(&self) -> Option<Instant> {
        self.timeout.map(|t| Instant::now() + t)
    }
}

/// Whether an absolute deadline has passed. `None` never expires.
pub fn deadline_expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_display_is_machine_greppable() {
        let e = Exhaustion::with_detail(Phase::Simplex, Resource::BranchBoundNodes, "cap 400");
        assert_eq!(
            Outcome::Unknown(e).to_string(),
            "UNKNOWN: branch-bound-nodes exhausted in simplex (cap 400)"
        );
        assert_eq!(Outcome::Safe.to_string(), "SAFE");
        assert_eq!(Outcome::Unsafe.to_string(), "UNSAFE");
    }

    #[test]
    fn default_budget_matches_historical_caps() {
        let b = Budget::default();
        assert_eq!(b.max_bb_nodes, 400);
        assert_eq!(b.max_saturation_lemmas, 200);
        assert_eq!(b.max_theory_conflicts, 20_000);
        assert!(b.timeout.is_none());
        assert!(b.deadline_from_now().is_none());
    }

    #[test]
    fn zero_timeout_expires_immediately() {
        let b = Budget::with_timeout(Duration::from_secs(0));
        let d = b.deadline_from_now();
        assert!(deadline_expired(d));
        assert!(!deadline_expired(None));
    }
}
