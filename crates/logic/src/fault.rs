//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] names one *fault point* in the pipeline and the
//! occurrence at which it should fire. Plans are parsed from the
//! `--inject-fault` CLI flag or the `DSOLVE_FAULT` environment variable
//! (`point` or `point@N`, e.g. `worker-panic@2`) and threaded explicitly
//! through the solver configuration — there is no process-global state,
//! so concurrently running tests never observe each other's faults.
//!
//! Firing is purely counter-based (no randomness, no clocks): the same
//! plan against the same input faults at exactly the same place on every
//! run, which is what makes the fault-matrix differential tests
//! reproducible.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named place in the pipeline where a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Panic inside a fixpoint/obligation worker at round `N`.
    WorkerPanic,
    /// Simulated incremental SMT-session failure mid-scope.
    SessionFail,
    /// Poison one shard of the shared query cache.
    CachePoison,
    /// Simulated trace-writer I/O error.
    TraceIo,
    /// Simulated per-query SMT timeout.
    QueryTimeout,
}

impl FaultPoint {
    /// The spec-string name of this fault point.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::WorkerPanic => "worker-panic",
            FaultPoint::SessionFail => "session-fail",
            FaultPoint::CachePoison => "cache-poison",
            FaultPoint::TraceIo => "trace-io",
            FaultPoint::QueryTimeout => "query-timeout",
        }
    }

    /// Every known fault point, for help text and matrix tests.
    pub fn all() -> &'static [FaultPoint] {
        &[
            FaultPoint::WorkerPanic,
            FaultPoint::SessionFail,
            FaultPoint::CachePoison,
            FaultPoint::TraceIo,
            FaultPoint::QueryTimeout,
        ]
    }

    fn from_name(s: &str) -> Option<FaultPoint> {
        FaultPoint::all().iter().copied().find(|p| p.name() == s)
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic single-fault plan: fire `point` at its `at`-th
/// opportunity (1-based).
///
/// Two triggering styles exist, chosen by the instrumentation site:
///
/// * [`FaultPlan::fire`] counts *occurrences* of the point (e.g. the
///   `at`-th SMT query times out);
/// * [`FaultPlan::fire_at`] matches an externally supplied *index*
///   (e.g. the panic fires in fixpoint round `at`), so the trigger does
///   not depend on how often the site is polled.
///
/// # Examples
///
/// ```
/// use dsolve_logic::{FaultPlan, FaultPoint};
///
/// let plan = FaultPlan::parse("query-timeout@3").unwrap();
/// assert_eq!(plan.point(), FaultPoint::QueryTimeout);
/// assert!(!plan.fire(FaultPoint::QueryTimeout)); // occurrence 1
/// assert!(!plan.fire(FaultPoint::QueryTimeout)); // occurrence 2
/// assert!(plan.fire(FaultPoint::QueryTimeout)); // occurrence 3: fault
/// assert!(!plan.fire(FaultPoint::SessionFail)); // other points never fire
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    point: FaultPoint,
    at: u64,
    hits: AtomicU64,
    fired: AtomicU64,
}

impl FaultPlan {
    /// Creates a plan that fires `point` at its `at`-th opportunity
    /// (values below 1 are clamped to 1).
    pub fn new(point: FaultPoint, at: u64) -> FaultPlan {
        FaultPlan {
            point,
            at: at.max(1),
            hits: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        }
    }

    /// Parses a spec of the form `point` or `point@N` (a bare name means
    /// `@1`). Returns a human-readable error for unknown points or a bad
    /// count.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        let (name, at) = match spec.split_once('@') {
            None => (spec, 1),
            Some((name, n)) => {
                let at: u64 = n
                    .parse()
                    .map_err(|_| format!("bad fault occurrence `{n}` in `{spec}`"))?;
                if at == 0 {
                    return Err(format!("fault occurrence must be >= 1 in `{spec}`"));
                }
                (name, at)
            }
        };
        let point = FaultPoint::from_name(name).ok_or_else(|| {
            let known: Vec<&str> = FaultPoint::all().iter().map(|p| p.name()).collect();
            format!(
                "unknown fault point `{name}` (known: {})",
                known.join(", ")
            )
        })?;
        Ok(FaultPlan::new(point, at))
    }

    /// Reads a plan from the `DSOLVE_FAULT` environment variable.
    /// `Ok(None)` when unset or empty; `Err` when set but malformed.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("DSOLVE_FAULT") {
            Ok(s) if !s.trim().is_empty() => FaultPlan::parse(&s).map(Some),
            _ => Ok(None),
        }
    }

    /// The fault point this plan targets.
    pub fn point(&self) -> FaultPoint {
        self.point
    }

    /// The 1-based occurrence (or index, for [`FaultPlan::fire_at`]) at
    /// which the fault fires.
    pub fn at(&self) -> u64 {
        self.at
    }

    /// Occurrence-counted trigger: returns `true` exactly when this is
    /// the `at`-th call for the plan's own point. Calls for other points
    /// are free and never fire.
    pub fn fire(&self, point: FaultPoint) -> bool {
        if point != self.point {
            return false;
        }
        let n = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
        if n == self.at {
            self.fired.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Index-matched trigger: returns `true` when `point` matches the
    /// plan and `index` equals the planned occurrence. Unlike
    /// [`FaultPlan::fire`], polling does not advance any counter, so the
    /// trigger is stable under call-site reordering.
    pub fn fire_at(&self, point: FaultPoint, index: u64) -> bool {
        if point == self.point && index == self.at {
            self.fired.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// How many times the fault has actually fired.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.point, self.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bare_name_means_first_occurrence() {
        let p = FaultPlan::parse("session-fail").unwrap();
        assert_eq!(p.point(), FaultPoint::SessionFail);
        assert_eq!(p.at(), 1);
        assert!(p.fire(FaultPoint::SessionFail));
        assert!(!p.fire(FaultPoint::SessionFail), "fires exactly once");
        assert_eq!(p.fired(), 1);
    }

    #[test]
    fn parse_with_occurrence() {
        let p = FaultPlan::parse(" worker-panic@2 ").unwrap();
        assert_eq!(p.point(), FaultPoint::WorkerPanic);
        assert_eq!(p.at(), 2);
        assert_eq!(p.to_string(), "worker-panic@2");
    }

    #[test]
    fn parse_rejects_unknown_and_malformed() {
        assert!(FaultPlan::parse("nonesuch").is_err());
        assert!(FaultPlan::parse("worker-panic@zero").is_err());
        assert!(FaultPlan::parse("worker-panic@0").is_err());
        let err = FaultPlan::parse("bogus").unwrap_err();
        assert!(err.contains("worker-panic"), "error lists known points: {err}");
    }

    #[test]
    fn fire_at_matches_index_without_counting() {
        let p = FaultPlan::new(FaultPoint::WorkerPanic, 3);
        assert!(!p.fire_at(FaultPoint::WorkerPanic, 1));
        assert!(!p.fire_at(FaultPoint::WorkerPanic, 2));
        // Polling does not consume: index 3 still fires later, repeatedly.
        assert!(p.fire_at(FaultPoint::WorkerPanic, 3));
        assert!(p.fire_at(FaultPoint::WorkerPanic, 3));
        assert!(!p.fire_at(FaultPoint::SessionFail, 3));
        assert_eq!(p.fired(), 2);
    }

    #[test]
    fn every_point_round_trips_through_parse() {
        for &pt in FaultPoint::all() {
            let p = FaultPlan::parse(pt.name()).unwrap();
            assert_eq!(p.point(), pt);
        }
    }
}
