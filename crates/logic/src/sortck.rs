//! Sort checking for terms and predicates.
//!
//! Well-formedness of refinements ([WF-REFINE] in the paper) requires that a
//! refinement predicate is a boolean expression over the environment. The
//! sort checker validates exactly that, and is also used to prune qualifier
//! instantiations to sort-correct ones.

use crate::{Binop, Expr, FuncSort, Pred, Rel, Sort, Symbol};
use std::collections::HashMap;

/// A sort environment: sorts for variables and uninterpreted functions.
#[derive(Clone, Debug, Default)]
pub struct SortEnv {
    vars: HashMap<Symbol, Sort>,
    funcs: HashMap<Symbol, FuncSort>,
}

impl SortEnv {
    /// Creates an empty environment.
    pub fn new() -> SortEnv {
        SortEnv::default()
    }

    /// Binds a variable to a sort (shadowing any previous binding).
    pub fn bind(&mut self, x: Symbol, s: Sort) {
        self.vars.insert(x, s);
    }

    /// Declares an uninterpreted function.
    pub fn declare_func(&mut self, f: Symbol, fs: FuncSort) {
        self.funcs.insert(f, fs);
    }

    /// Looks up a variable's sort.
    pub fn sort_of_var(&self, x: Symbol) -> Option<&Sort> {
        self.vars.get(&x)
    }

    /// Looks up a function's sort.
    pub fn sort_of_func(&self, f: Symbol) -> Option<&FuncSort> {
        self.funcs.get(&f)
    }

    /// Iterates over all variable bindings.
    pub fn vars(&self) -> impl Iterator<Item = (&Symbol, &Sort)> {
        self.vars.iter()
    }

    /// Infers the sort of a term, or `None` if ill-sorted.
    pub fn sort_of(&self, e: &Expr) -> Option<Sort> {
        match e {
            Expr::Var(x) => self.vars.get(x).cloned(),
            Expr::Int(_) => Some(Sort::Int),
            Expr::Bool(_) => Some(Sort::Bool),
            Expr::Binop(op, a, b) => {
                let sa = self.sort_of(a)?;
                let sb = self.sort_of(b)?;
                match op {
                    Binop::Add | Binop::Sub | Binop::Mul | Binop::Div | Binop::Mod => {
                        if sa == Sort::Int && sb == Sort::Int {
                            Some(Sort::Int)
                        } else {
                            None
                        }
                    }
                }
            }
            Expr::Neg(a) => {
                if self.sort_of(a)? == Sort::Int {
                    Some(Sort::Int)
                } else {
                    None
                }
            }
            Expr::Ite(c, t, f) => {
                if !self.wellsorted(c) {
                    return None;
                }
                let st = self.sort_of(t)?;
                let sf = self.sort_of(f)?;
                if st.compatible(&sf) {
                    Some(st)
                } else {
                    None
                }
            }
            Expr::App(f, args) => {
                let fs = self.funcs.get(f)?;
                if fs.args.len() != args.len() {
                    return None;
                }
                for (a, expect) in args.iter().zip(&fs.args) {
                    let got = self.sort_of(a)?;
                    if !got.compatible(expect) {
                        return None;
                    }
                }
                Some(fs.ret.clone())
            }
            Expr::Sel(m, i) => {
                if self.sort_of(m)? == Sort::Map && self.sort_of(i)?.is_numeric() {
                    // Map contents are integers in our embedding; richer
                    // codomains are modelled with uninterpreted wrappers.
                    Some(Sort::Int)
                } else {
                    None
                }
            }
            Expr::Upd(m, i, v) => {
                if self.sort_of(m)? == Sort::Map
                    && self.sort_of(i)?.is_numeric()
                    && self.sort_of(v)? == Sort::Int
                {
                    Some(Sort::Map)
                } else {
                    None
                }
            }
            Expr::SetEmpty => Some(Sort::Set),
            Expr::SetSingle(e) => {
                self.sort_of(e)?;
                Some(Sort::Set)
            }
            Expr::SetUnion(a, b) => {
                if self.sort_of(a)? == Sort::Set && self.sort_of(b)? == Sort::Set {
                    Some(Sort::Set)
                } else {
                    None
                }
            }
        }
    }

    /// Whether a predicate is well-sorted under the environment.
    pub fn wellsorted(&self, p: &Pred) -> bool {
        match p {
            Pred::True | Pred::False => true,
            Pred::Atom(rel, a, b) => {
                let (Some(sa), Some(sb)) = (self.sort_of(a), self.sort_of(b)) else {
                    return false;
                };
                match rel {
                    Rel::Eq | Rel::Ne => sa.compatible(&sb),
                    Rel::Lt | Rel::Le | Rel::Gt | Rel::Ge => {
                        sa == Sort::Int && sb == Sort::Int
                    }
                    Rel::In => sb == Sort::Set,
                    Rel::Sub => sa == Sort::Set && sb == Sort::Set,
                }
            }
            Pred::And(ps) | Pred::Or(ps) => ps.iter().all(|p| self.wellsorted(p)),
            Pred::Not(p) => self.wellsorted(p),
            Pred::Imp(p, q) | Pred::Iff(p, q) => self.wellsorted(p) && self.wellsorted(q),
            Pred::Term(e) => self.sort_of(e) == Some(Sort::Bool),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> SortEnv {
        let mut env = SortEnv::new();
        env.bind(Symbol::new("x"), Sort::Int);
        env.bind(Symbol::new("b"), Sort::Bool);
        env.bind(Symbol::new("s"), Sort::Set);
        env.bind(Symbol::new("m"), Sort::Map);
        env.bind(Symbol::new("xs"), Sort::Obj(Symbol::new("list")));
        env.declare_func(
            Symbol::new("elts"),
            FuncSort::new(vec![Sort::Obj(Symbol::new("list"))], Sort::Set),
        );
        env
    }

    #[test]
    fn arithmetic_sorts() {
        let env = env();
        assert_eq!(
            env.sort_of(&Expr::var("x").add(Expr::int(1))),
            Some(Sort::Int)
        );
        assert_eq!(env.sort_of(&Expr::var("b").add(Expr::int(1))), None);
    }

    #[test]
    fn measure_application_sorts() {
        let env = env();
        let e = Expr::app("elts", vec![Expr::var("xs")]);
        assert_eq!(env.sort_of(&e), Some(Sort::Set));
        // Wrong arity is rejected.
        let bad = Expr::app("elts", vec![Expr::var("xs"), Expr::var("x")]);
        assert_eq!(env.sort_of(&bad), None);
    }

    #[test]
    fn sel_upd_sorts() {
        let env = env();
        assert_eq!(
            env.sort_of(&Expr::sel(Expr::var("m"), Expr::var("x"))),
            Some(Sort::Int)
        );
        assert_eq!(
            env.sort_of(&Expr::upd(Expr::var("m"), Expr::var("x"), Expr::int(0))),
            Some(Sort::Map)
        );
        assert_eq!(env.sort_of(&Expr::sel(Expr::var("s"), Expr::var("x"))), None);
    }

    #[test]
    fn wellsorted_preds() {
        let env = env();
        assert!(env.wellsorted(&Pred::lt(Expr::var("x"), Expr::int(3))));
        assert!(!env.wellsorted(&Pred::lt(Expr::var("s"), Expr::int(3))));
        assert!(env.wellsorted(&Pred::mem(Expr::var("x"), Expr::var("s"))));
        assert!(env.wellsorted(&Pred::Term(Expr::var("b"))));
        assert!(!env.wellsorted(&Pred::Term(Expr::var("x"))));
        // Set equality is fine; set order is not.
        assert!(env.wellsorted(&Pred::eq(
            Expr::var("s"),
            Expr::union(Expr::SetEmpty, Expr::var("s"))
        )));
    }

    #[test]
    fn obj_equality_across_tags_allowed() {
        let mut env = env();
        env.bind(Symbol::new("ys"), Sort::Obj(Symbol::new("a")));
        assert!(env.wellsorted(&Pred::eq(Expr::var("xs"), Expr::var("ys"))));
    }
}
