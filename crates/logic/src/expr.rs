//! Terms of the refinement logic.

use crate::{Pred, Symbol};
use std::collections::BTreeSet;
use std::fmt;

/// Binary arithmetic operators. Multiplication is syntactically allowed but
/// the solver only interprets it when one side is a constant (linear
/// fragment); other products are treated as uninterpreted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Binop {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (linear occurrences only are interpreted).
    Mul,
    /// Euclidean division (uninterpreted except by constants).
    Div,
    /// Modulus (uninterpreted except by constants).
    Mod,
}

impl fmt::Display for Binop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Binop::Add => "+",
            Binop::Sub => "-",
            Binop::Mul => "*",
            Binop::Div => "/",
            Binop::Mod => "mod",
        };
        write!(f, "{s}")
    }
}

/// A first-order term.
///
/// Terms include program variables, integer literals, linear arithmetic,
/// applications of uninterpreted functions (measures such as `elts` or
/// `ht`), McCarthy map operations `Sel`/`Upd`, and finite-set constructors.
///
/// # Examples
///
/// ```
/// use dsolve_logic::{Expr, Symbol};
/// let e = Expr::var("x").add(Expr::int(1));
/// assert_eq!(e.to_string(), "(x + 1)");
/// assert!(e.free_vars().contains(&Symbol::new("x")));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Expr {
    /// A variable (program variable, the value variable `ν`, or a `★`).
    Var(Symbol),
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// A binary arithmetic operation.
    Binop(Binop, Box<Expr>, Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// If-then-else at the term level (used by measure bodies, e.g. the
    /// height measure of AVL trees).
    Ite(Box<Pred>, Box<Expr>, Box<Expr>),
    /// Application of an uninterpreted function or measure.
    App(Symbol, Vec<Expr>),
    /// McCarthy map read `Sel(m, i)`.
    Sel(Box<Expr>, Box<Expr>),
    /// McCarthy map write `Upd(m, i, v)`.
    Upd(Box<Expr>, Box<Expr>, Box<Expr>),
    /// The empty set.
    SetEmpty,
    /// The singleton set `{e}`.
    SetSingle(Box<Expr>),
    /// Set union.
    SetUnion(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A variable term.
    pub fn var(name: impl Into<Symbol>) -> Expr {
        Expr::Var(name.into())
    }

    /// The value variable `ν`.
    pub fn nu() -> Expr {
        Expr::Var(Symbol::value_var())
    }

    /// An integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binop(Binop::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binop(Binop::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binop(Binop::Mul, Box::new(self), Box::new(rhs))
    }

    /// An application `f(args)` of an uninterpreted function or measure.
    pub fn app(f: impl Into<Symbol>, args: Vec<Expr>) -> Expr {
        Expr::App(f.into(), args)
    }

    /// `Sel(map, key)`.
    pub fn sel(map: Expr, key: Expr) -> Expr {
        Expr::Sel(Box::new(map), Box::new(key))
    }

    /// `Upd(map, key, val)`.
    pub fn upd(map: Expr, key: Expr, val: Expr) -> Expr {
        Expr::Upd(Box::new(map), Box::new(key), Box::new(val))
    }

    /// The singleton set `{e}`.
    pub fn single(e: Expr) -> Expr {
        Expr::SetSingle(Box::new(e))
    }

    /// The union of two sets.
    pub fn union(a: Expr, b: Expr) -> Expr {
        Expr::SetUnion(Box::new(a), Box::new(b))
    }

    /// Capture-free substitution of `with` for the variable `var`.
    ///
    /// The logic has no term-level binders, so substitution is structural.
    pub fn subst(&self, var: Symbol, with: &Expr) -> Expr {
        match self {
            Expr::Var(x) => {
                if *x == var {
                    with.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Int(_) | Expr::Bool(_) | Expr::SetEmpty => self.clone(),
            Expr::Binop(op, a, b) => Expr::Binop(
                *op,
                Box::new(a.subst(var, with)),
                Box::new(b.subst(var, with)),
            ),
            Expr::Neg(a) => Expr::Neg(Box::new(a.subst(var, with))),
            Expr::Ite(c, t, e) => Expr::Ite(
                Box::new(c.subst(var, with)),
                Box::new(t.subst(var, with)),
                Box::new(e.subst(var, with)),
            ),
            Expr::App(f, args) => {
                Expr::App(*f, args.iter().map(|a| a.subst(var, with)).collect())
            }
            Expr::Sel(m, i) => Expr::sel(m.subst(var, with), i.subst(var, with)),
            Expr::Upd(m, i, v) => Expr::upd(
                m.subst(var, with),
                i.subst(var, with),
                v.subst(var, with),
            ),
            Expr::SetSingle(e) => Expr::single(e.subst(var, with)),
            Expr::SetUnion(a, b) => Expr::union(a.subst(var, with), b.subst(var, with)),
        }
    }

    /// All variables occurring in the term.
    pub fn free_vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    pub(crate) fn collect_vars(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Expr::Var(x) => {
                out.insert(*x);
            }
            Expr::Int(_) | Expr::Bool(_) | Expr::SetEmpty => {}
            Expr::Binop(_, a, b) | Expr::SetUnion(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Neg(a) | Expr::SetSingle(a) => a.collect_vars(out),
            Expr::Ite(c, t, e) => {
                c.collect_vars(out);
                t.collect_vars(out);
                e.collect_vars(out);
            }
            Expr::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::Sel(m, i) => {
                m.collect_vars(out);
                i.collect_vars(out);
            }
            Expr::Upd(m, i, v) => {
                m.collect_vars(out);
                i.collect_vars(out);
                v.collect_vars(out);
            }
        }
    }

    /// Whether the value variable `ν` occurs in the term.
    pub fn mentions_nu(&self) -> bool {
        self.free_vars().contains(&Symbol::value_var())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Binop(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Neg(a) => write!(f, "(- {a})"),
            Expr::Ite(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            Expr::App(g, args) => {
                write!(f, "{g}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Sel(m, i) => write!(f, "Sel({m}, {i})"),
            Expr::Upd(m, i, v) => write!(f, "Upd({m}, {i}, {v})"),
            Expr::SetEmpty => write!(f, "empty"),
            Expr::SetSingle(e) => write!(f, "single({e})"),
            Expr::SetUnion(a, b) => write!(f, "union({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_replaces_all_occurrences() {
        let x = Symbol::new("x");
        let e = Expr::var("x").add(Expr::var("x").mul(Expr::var("y")));
        let r = e.subst(x, &Expr::int(3));
        assert_eq!(r.to_string(), "(3 + (3 * y))");
    }

    #[test]
    fn substitution_enters_apps_and_sets() {
        let x = Symbol::new("x");
        let e = Expr::union(
            Expr::single(Expr::var("x")),
            Expr::app("elts", vec![Expr::var("x")]),
        );
        let r = e.subst(x, &Expr::var("z"));
        assert_eq!(r.to_string(), "union(single(z), elts(z))");
    }

    #[test]
    fn free_vars_are_collected() {
        let e = Expr::sel(Expr::var("m"), Expr::var("i")).add(Expr::int(2));
        let fv = e.free_vars();
        assert!(fv.contains(&Symbol::new("m")));
        assert!(fv.contains(&Symbol::new("i")));
        assert_eq!(fv.len(), 2);
    }

    #[test]
    fn nu_detection() {
        assert!(Expr::nu().mentions_nu());
        assert!(!Expr::var("x").mentions_nu());
    }
}
