//! Interned identifiers.
//!
//! Symbols are cheap-to-copy handles into a process-global string interner.
//! The verifier creates enormous numbers of identical variable names
//! (fresh unfoldings, pending substitutions, qualifier instantiations), so
//! interning keeps comparisons and hashing `O(1)`.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// An interned string identifier.
///
/// Two symbols are equal iff they were created from the same string, so
/// equality and hashing are constant-time index operations.
///
/// # Examples
///
/// ```
/// use dsolve_logic::Symbol;
/// let a = Symbol::new("x");
/// let b = Symbol::new("x");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "x");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

/// Times the interner lock was found poisoned and recovered.
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Locks the interner, recovering from poison.
///
/// The interner is append-only: `map` and `strings` are each updated by a
/// single infallible push/insert, so a panic elsewhere on a thread holding
/// the lock can never leave them torn. Recovering with `into_inner` is
/// therefore safe, and keeps one panicking worker from taking down every
/// later `Symbol` operation process-wide.
fn lock_interner() -> std::sync::MutexGuard<'static, Interner> {
    interner().lock().unwrap_or_else(|e| {
        POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
        e.into_inner()
    })
}

impl Symbol {
    /// Interns `name` and returns its symbol.
    pub fn new(name: &str) -> Symbol {
        let mut i = lock_interner();
        if let Some(&id) = i.map.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(i.strings.len()).expect("symbol table overflow");
        // Interned strings live for the whole process; leaking gives us
        // `&'static str` keys without unsafe code.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        i.strings.push(leaked);
        i.map.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        let i = lock_interner();
        i.strings[self.0 as usize]
    }

    /// How many times the global interner lock was found poisoned and
    /// recovered (a robustness diagnostic; normally zero).
    pub fn interner_poison_recoveries() -> u64 {
        POISON_RECOVERIES.load(Ordering::Relaxed)
    }

    /// Returns a fresh symbol guaranteed distinct from all previous symbols,
    /// with a human-readable `prefix`.
    ///
    /// Fresh names use the reserved `%` character so they can never collide
    /// with parsed program identifiers.
    pub fn fresh(prefix: &str) -> Symbol {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        Symbol::new(&format!("{prefix}%{n}"))
    }

    /// The value variable `ν` that refinement predicates constrain.
    pub fn value_var() -> Symbol {
        Symbol::new("VV")
    }

    /// The `i`-th qualifier placeholder `★i`.
    ///
    /// Placeholder symbols are instantiated with in-scope program variables
    /// when a qualifier set `Q` is expanded into `Q★`.
    pub fn star(i: usize) -> Symbol {
        Symbol::new(&format!("*{i}"))
    }

    /// Whether this symbol is a qualifier placeholder (`★i`).
    pub fn is_star(self) -> bool {
        self.as_str().starts_with('*')
    }

    /// Whether this symbol was produced by [`Symbol::fresh`].
    pub fn is_fresh(self) -> bool {
        self.as_str().contains('%')
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Symbol::new("hello");
        let b = Symbol::new("hello");
        let c = Symbol::new("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn fresh_symbols_are_distinct() {
        let a = Symbol::fresh("x");
        let b = Symbol::fresh("x");
        assert_ne!(a, b);
        assert!(a.is_fresh());
        assert!(b.as_str().starts_with('x'));
    }

    #[test]
    fn value_var_and_stars() {
        assert_eq!(Symbol::value_var(), Symbol::new("VV"));
        assert!(Symbol::star(0).is_star());
        assert!(Symbol::star(3).is_star());
        assert_ne!(Symbol::star(0), Symbol::star(1));
        assert!(!Symbol::new("x").is_star());
    }

    #[test]
    fn interner_survives_poisoning_panic() {
        // Poison the global lock by panicking while holding it, then
        // show that interning still works afterwards.
        let _ = std::thread::spawn(|| {
            let _guard = lock_interner();
            panic!("poison the interner on purpose");
        })
        .join();
        let s = Symbol::new("post-poison");
        assert_eq!(s.as_str(), "post-poison");
        assert!(Symbol::interner_poison_recoveries() >= 1);
    }

    #[test]
    fn display_matches_str() {
        let s = Symbol::new("nu");
        assert_eq!(format!("{s}"), "nu");
        assert_eq!(format!("{s:?}"), "nu");
    }
}
