//! Property tests for the refinement logic: substitution algebra and
//! printer/parser round-trips.

use dsolve_logic::{parse_pred, Expr, Pred, Subst, Symbol};
use proptest::prelude::*;

fn arb_var() -> impl Strategy<Value = Symbol> {
    prop_oneof![
        Just(Symbol::new("x")),
        Just(Symbol::new("y")),
        Just(Symbol::new("z")),
        Just(Symbol::value_var()),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_var().prop_map(Expr::Var),
        (-20i64..20).prop_map(Expr::int),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::union(
                Expr::single(a),
                Expr::single(b)
            )),
        ]
    })
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let atom = prop_oneof![
        (arb_expr(), arb_expr()).prop_map(|(a, b)| Pred::lt(a, b)),
        (arb_expr(), arb_expr()).prop_map(|(a, b)| Pred::eq(a, b)),
        (arb_expr(), arb_expr()).prop_map(|(a, b)| Pred::le(a, b)),
        Just(Pred::True),
        Just(Pred::False),
    ];
    atom.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Pred::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Pred::Or),
            inner.clone().prop_map(|p| Pred::Not(Box::new(p))),
            (inner.clone(), inner)
                .prop_map(|(a, b)| Pred::Imp(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    /// Substituting a variable that does not occur is the identity.
    #[test]
    fn subst_absent_var_is_identity(p in arb_pred()) {
        let fresh = Symbol::new("not_in_any_generated_pred");
        prop_assert_eq!(p.subst(fresh, &Expr::int(7)), p);
    }

    /// After substituting `x := c` (a constant), `x` no longer occurs.
    #[test]
    fn subst_eliminates_variable(p in arb_pred()) {
        let x = Symbol::new("x");
        let q = p.subst(x, &Expr::int(3));
        prop_assert!(!q.free_vars().contains(&x));
    }

    /// Sequential pending substitutions agree with nested eager ones.
    #[test]
    fn subst_sequencing(p in arb_pred()) {
        let x = Symbol::new("x");
        let y = Symbol::new("y");
        let theta = Subst::new()
            .then(x, Expr::var("y"))
            .then(y, Expr::int(5));
        let sequential = theta.apply_pred(&p);
        let nested = p.subst(x, &Expr::var("y")).subst(y, &Expr::int(5));
        prop_assert_eq!(sequential, nested);
    }

    /// Printing and parsing reach a fixpoint after one normalization
    /// pass (the parser's smart constructors push negations into atoms,
    /// so the first round-trip may rewrite; the second must not).
    #[test]
    fn display_parse_roundtrip(p in arb_pred()) {
        let printed = p.to_string();
        let once = parse_pred(&printed);
        prop_assert!(once.is_ok(), "failed to reparse `{}`", printed);
        let normal = once.unwrap().to_string();
        let twice = parse_pred(&normal);
        prop_assert!(twice.is_ok(), "failed to reparse normalized `{}`", normal);
        prop_assert_eq!(twice.unwrap().to_string(), normal);
    }

    /// Free variables are preserved by double negation.
    #[test]
    fn not_not_preserves_free_vars(p in arb_pred()) {
        let q = Pred::not(Pred::not(p.clone()));
        prop_assert_eq!(q.free_vars(), p.free_vars());
    }
}
