#!/bin/bash
# Pretty-prints the top-K most expensive SMT queries from a Chrome trace
# written by `dsolve --trace-out`.
#
#   scripts/top_queries.sh TRACE.json [K]
#
# Each line: duration, verdict, constraint id, round, and the NanoML
# source location the query discharges. K defaults to 10.
set -euo pipefail

if [[ $# -lt 1 || $# -gt 2 ]]; then
    echo "usage: $0 TRACE.json [K]" >&2
    exit 2
fi
trace="$1"
k="${2:-10}"

python3 - "$trace" "$k" <<'EOF'
import json, sys

path, k = sys.argv[1], int(sys.argv[2])
with open(path) as f:
    text = f.read()
# dsolve finishes the array on exit, but a killed run may leave it open;
# tolerate that the same way the in-tree validator does.
try:
    events = json.loads(text)
except json.JSONDecodeError:
    body = text.strip()
    if body.startswith("["):
        body = body[1:]
    events = json.loads("[" + body.rstrip().rstrip(",") + "]")

queries = [
    e for e in events
    if e.get("ph") == "X" and e.get("cat") == "smt"
]
queries.sort(key=lambda e: e.get("dur", 0), reverse=True)

total_us = sum(e.get("dur", 0) for e in queries)
print(f"{len(queries)} SMT queries, {total_us/1e3:.1f}ms total; top {min(k, len(queries))}:")
for e in queries[:k]:
    args = e.get("args", {})
    print(
        f"  {e.get('dur', 0)/1e3:9.3f}ms  {args.get('verdict', '?'):8}"
        f"  c{args.get('constraint', '?'):<5} round {args.get('round', '?'):<3}"
        f" [{e.get('name', '?')}]"
    )
EOF
