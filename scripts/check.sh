#!/bin/bash
# Offline repository health check: release build, full test suite, and
# lints, in that order. Needs no network — criterion/proptest are
# vendored stubs and the benches are feature-gated.
set -e
cd "$(dirname "$0")/.."

# One jobs setting for every dsolve invocation below, so the smoke suite
# actually exercises the parallel fixpoint on multi-core hosts (and a
# single knob pins it: JOBS=1 ./scripts/check.sh for a sequential run).
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 1)}"
echo "== jobs: $JOBS"

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test --workspace -q"
cargo test --workspace -q

# The incremental-vs-scratch differential suites also run above as part
# of the workspace tests; rerun them by name so a failure is unmissable.
# (Use --features slow-proptest for a deeper local soak.)
echo "== cargo test -p dsolve-smt --test incremental_vs_scratch --test theory_oracles"
cargo test -p dsolve-smt --test incremental_vs_scratch --test theory_oracles

# Observability: registry/accounting invariants, trace validation, and
# the overhead guard, by name for the same reason.
echo "== cargo test -p dsolve-obs -p dsolve --test obs"
cargo test -p dsolve-obs
cargo test -p dsolve --test obs
echo "== cargo test -p dsolve-bench --test obs_overhead"
cargo test -p dsolve-bench --test obs_overhead

# Smoke a real trace through the validator: the emitted file must be a
# well-formed Chrome trace with provenance-named query spans.
echo "== dsolve --trace-out smoke"
TRACE_TMP=$(mktemp /tmp/dsolve-trace-smoke.XXXXXX.json)
./target/release/dsolve benchmarks/stablesort.ml --quiet --jobs 1 --trace-out "$TRACE_TMP"
./scripts/top_queries.sh "$TRACE_TMP" 3 > /dev/null
python3 - "$TRACE_TMP" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "no complete events in trace"
names = {e["name"] for e in spans}
for phase in ("parse", "constraint_gen", "fixpoint", "obligations"):
    assert phase in names, f"missing {phase} span"
assert any(n.startswith("round ") for n in names), "missing round spans"
assert any(e.get("cat") == "smt" for e in spans), "missing SMT query spans"
print(f"trace ok: {len(events)} events, {len(spans)} spans")
EOF
rm -f "$TRACE_TMP"

# Robustness: every deterministic fault point against the smoke
# benchmarks (same verdict or a degraded UNKNOWN — never a flip), by
# name so a failure is unmissable. Also runs above with the workspace.
echo "== cargo test -p dsolve --test fault_matrix"
cargo test -p dsolve --test fault_matrix

# Certification smoke: the smoke rows must stay SAFE with every definite
# SMT verdict replayed through the independent checker.
echo "== dsolve --certify smoke"
for b in ralist stablesort subvsolve malloc; do
    ./target/release/dsolve "benchmarks/$b.ml" --quiet --certify --timeout 60 --jobs "$JOBS"
done

# Differential fleet smoke: a fixed seed, ≥50 generated programs, the
# full config matrix (workers × incremental × cache × certify × every
# fault point). Zero soundness disagreements and zero verdict flips or
# the script fails. Verdicts are budget-deterministic (no wall clock),
# so this run's digest is reproducible anywhere.
# (A deeper soak is gated behind: cargo test -p dsolve --features slow-proptest)
echo "== dsolve-fleet --seed 42 --count 50 --matrix full"
./target/release/dsolve-fleet --seed 42 --count 50 --matrix full

echo "== cargo build --release -p dsolve-bench --features bench --benches"
cargo build --release -p dsolve-bench --features bench --benches

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== ./run_figure10.sh --smoke --jobs $JOBS"
./run_figure10.sh --smoke --jobs "$JOBS"

echo "check.sh: all green"
