#!/bin/bash
# Offline repository health check: release build, full test suite, and
# lints, in that order. Needs no network — criterion/proptest are
# vendored stubs and the benches are feature-gated.
set -e
cd "$(dirname "$0")/.."

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test --workspace -q"
cargo test --workspace -q

# The incremental-vs-scratch differential suites also run above as part
# of the workspace tests; rerun them by name so a failure is unmissable.
# (Use --features slow-proptest for a deeper local soak.)
echo "== cargo test -p dsolve-smt --test incremental_vs_scratch --test theory_oracles"
cargo test -p dsolve-smt --test incremental_vs_scratch --test theory_oracles

echo "== cargo build --release -p dsolve-bench --features bench --benches"
cargo build --release -p dsolve-bench --features bench --benches

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== ./run_figure10.sh --smoke"
./run_figure10.sh --smoke

echo "check.sh: all green"
