(* List-sort: textbook list sorting routines (Fig. 10 row 1).
   Properties: Sorted (output is an increasing list) and Elts (the output
   has the same elements as the input). *)

(* ---- insertion sort (Fig. 2 of the paper) ---- *)

let rec insert x vs =
  match vs with
  | [] -> [x]
  | y :: ys -> if x < y then x :: y :: ys else y :: insert x ys

let rec insertsort xs =
  match xs with
  | [] -> []
  | x :: rest -> insert x (insertsort rest)

(* ---- merge sort ---- *)

let rec halve xs =
  match xs with
  | [] -> ([], [])
  | x :: rest ->
    (match rest with
     | [] -> ([x], [])
     | y :: rest2 ->
       let (a, b) = halve rest2 in
       (x :: a, y :: b))

let rec merge xs ys =
  match xs with
  | [] -> ys
  | x :: xs2 ->
    (match ys with
     | [] -> x :: xs2
     | y :: ys2 ->
       if x < y then x :: merge xs2 (y :: ys2)
       else y :: merge (x :: xs2) ys2)

let rec mergesort xs =
  match xs with
  | [] -> []
  | x1 :: rest ->
    (match rest with
     | [] -> [x1]
     | x2 :: rest2 ->
       let (a, b) = halve (x1 :: x2 :: rest2) in
       merge (mergesort a) (mergesort b))

(* ---- quick sort (with the witness-parameter append of §6.1) ---- *)

let rec partition pivot xs =
  match xs with
  | [] -> ([], [])
  | x :: rest ->
    let (ls, gs) = partition pivot rest in
    if x < pivot then (x :: ls, gs) else (ls, x :: gs)

let rec append w ls gs =
  match ls with
  | [] -> w :: gs
  | l :: rest -> l :: append w rest gs

let rec quicksort xs =
  match xs with
  | [] -> []
  | pivot :: rest ->
    let (ls, gs) = partition pivot rest in
    append pivot (quicksort ls) (quicksort gs)
