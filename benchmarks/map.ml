(* Map: the OCaml standard library's AVL-style functional maps
   (Fig. 10 row `Map`).
   Properties: Balance (sibling heights differ by at most two, height
   fields are exact), BST (binary search order on keys), Set (the key
   set tracks insertions). *)

type ('k, 'd) t = E | N of 'k * 'd * ('k, 'd) t * ('k, 'd) t * int

let height t =
  match t with
  | E -> 0
  | N (k, d, l, r, h) -> h

(* Builds a node from subtrees already within the balance tolerance. *)
let create k d l r =
  let hl = height l in
  let hr = height r in
  if hl < hr then N (k, d, l, r, hr + 1) else N (k, d, l, r, hl + 1)

(* Restores balance after one insertion (difference at most three). *)
let bal k d l r =
  let hl = height l in
  let hr = height r in
  if hl > hr + 2 then
    (match l with
     | E -> diverge ()
     | N (lk, ld, ll, lr, lh) ->
       if height ll >= height lr then create lk ld ll (create k d lr r)
       else
         (match lr with
          | E -> diverge ()
          | N (lrk, lrd, lrl, lrr, lrh) ->
            create lrk lrd (create lk ld ll lrl) (create k d lrr r)))
  else if hr > hl + 2 then
    (match r with
     | E -> diverge ()
     | N (rk, rd, rl, rr, rh) ->
       if height rr >= height rl then create rk rd (create k d l rl) rr
       else
         (match rl with
          | E -> diverge ()
          | N (rlk, rld, rll, rlr, rlh) ->
            create rlk rld (create k d l rll) (create rk rd rlr rr)))
  else create k d l r

let rec add kx dx t =
  match t with
  | E -> N (kx, dx, E, E, 1)
  | N (k, d, l, r, h) ->
    if kx = k then N (kx, dx, l, r, h)
    else if kx < k then bal k d (add kx dx l) r
    else bal k d l (add kx dx r)

let rec find kx t =
  match t with
  | E -> diverge ()
  | N (k, d, l, r, h) ->
    if kx = k then d
    else if kx < k then find kx l
    else find kx r

let rec mem_key kx t =
  match t with
  | E -> false
  | N (k, d, l, r, h) ->
    if kx = k then true
    else if kx < k then mem_key kx l
    else mem_key kx r
