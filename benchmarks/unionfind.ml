(* Union-find with path compression (Fig. 10 row `Unionfind`).
   Property: Acyclic — each non-root's rank is strictly below its
   parent's rank, so following parent links terminates (§5.2).

   The rank map is a *witness parameter* to find (§6.1): it is not used
   computationally there, but the acyclicity invariant of the parent map
   refers to it. *)

let rec find rank parent0 x =
  let px = get parent0 x in
  if px = x then (parent0, x)
  else
    let (parent1, px2) = find rank parent0 px in
    let parent2 = set parent1 x px2 in
    (parent2, px2)

(* Links two elements' roots; when ranks tie, the surviving root's rank
   is bumped, preserving the invariant. *)
let union rank0 parent0 a b =
  let (parent1, ra) = find rank0 parent0 a in
  let (parent2, rb) = find rank0 parent1 b in
  if ra = rb then (rank0, parent2)
  else
    let ka = get rank0 ra in
    let kb = get rank0 rb in
    if ka < kb then (rank0, set parent2 ra rb)
    else if kb < ka then (rank0, set parent2 rb ra)
    else
      let rank1 = set rank0 ra (ka + 1) in
      (rank1, set parent2 rb ra)

(* A fresh singleton: its own parent, rank zero. *)
let make_set rank0 parent0 x =
  (set rank0 x 0, set parent0 x x)
