(* Ralist: random-access lists over complete binary trees (Fig. 10 row
   `Ralist`, after Xi's DML examples / Okasaki).
   Property: Len — cached sizes are exact, trees are complete, every
   lookup stays in bounds, and cons grows the length by exactly one. *)

type 'a tree = Leaf of 'a | Node of int * 'a * 'a tree * 'a tree
type 'a rl = RNil | RCons of int * 'a tree * 'a rl

let tsz t =
  match t with
  | Leaf x -> 1
  | Node (n, x, l, r) -> n

(* Reads index i of a complete tree (0 is the root, pre-order). *)
let rec tree_lookup t i =
  match t with
  | Leaf x -> x
  | Node (n, x, l, r) ->
    if i = 0 then x
    else if i <= tsz l then tree_lookup l (i - 1)
    else tree_lookup r (i - 1 - tsz l)

let rec rl_lookup xs i =
  match xs with
  | RNil -> diverge ()
  | RCons (w, t, rest) ->
    if i < w then tree_lookup t i
    else rl_lookup rest (i - w)

(* Prepends an element, merging equal-weight leading trees. *)
let rl_cons x xs =
  match xs with
  | RNil -> RCons (1, Leaf x, RNil)
  | RCons (w1, t1, rest1) ->
    (match rest1 with
     | RNil -> RCons (1, Leaf x, RCons (w1, t1, rest1))
     | RCons (w2, t2, rest2) ->
       if w1 = w2 then
         RCons (1 + w1 + w2, Node (1 + w1 + w2, x, t1, t2), rest2)
       else RCons (1, Leaf x, RCons (w1, t1, rest1)))

let rl_head xs = rl_lookup xs 0

let rl_tail xs =
  match xs with
  | RNil -> diverge ()
  | RCons (w, t, rest) ->
    (match t with
     | Leaf x -> rest
     | Node (n, x, l, r) ->
       RCons (tsz l, l, RCons (tsz r, r, rest)))
