(* Bdd: binary decision diagrams with memoized negation (Fig. 10 row
   `Bdd`, after Filliâtre).
   Property: VariableOrder — on every path from a node to its children,
   variable indices strictly increase. The memo cache carries the
   invariant through a polymorphic refinement: each key (a BDD) maps to a
   BDD whose root variable is no smaller (§6). *)

type bdd = Z of int | O of int | N of int * bdd * bdd * int

(* The hash-cons tag of a node. *)
let tag b =
  match b with
  | Z u -> u
  | O u -> u
  | N (x, l, r, u) -> u

(* Allocates a node, collapsing the redundant case. *)
let mk next x l r =
  if tag l = tag r then (next, l)
  else (next + 1, N (x, l, r, next))

(* Memoized negation over the cache. *)
let rec mk_not cache next x =
  if mem cache x then (cache, next, get cache x)
  else
    match x with
    | Z u -> let r = O 1 in (set cache x r, next, r)
    | O u -> let r = Z 0 in (set cache x r, next, r)
    | N (v, l, rr, u) ->
      let (c1, n1, nl) = mk_not cache next l in
      let (c2, n2, nr) = mk_not c1 n1 rr in
      let (n3, nd) = mk n2 v nl nr in
      (set c2 x nd, n3, nd)

(* Restriction of a BDD by assigning the smallest variable. *)
let rec restrict cache next x value =
  if mem cache x then (cache, next, get cache x)
  else
    match x with
    | Z u -> (cache, next, Z u)
    | O u -> (cache, next, O u)
    | N (v, l, rr, u) ->
      let chosen = if value then rr else l in
      (set cache x chosen, next, chosen)
