(* Stablesort: a tail-recursive merge sort in the style of the OCaml
   standard library's List.sort (Fig. 10 row `Stablesort`).
   Property: Sorted. The merges are tail-recursive and build *reversed*
   (decreasing) accumulators which are reversed back — each phase needs a
   witness parameter bounding the accumulator against the inputs (§6.1),
   and the two reversal directions are separate functions (the code
   duplication the paper reports). *)

(* Pushes an increasing list onto a decreasing accumulator bounded by w. *)
let rec rev_onto_up w zs acc =
  match zs with
  | [] -> acc
  | z :: zs2 -> rev_onto_up z zs2 (z :: acc)

(* Pushes a decreasing list onto an increasing accumulator bounded by w. *)
let rec rev_onto_down w zs acc =
  match zs with
  | [] -> acc
  | z :: zs2 -> rev_onto_down z zs2 (z :: acc)

(* Tail-recursive merge of two increasing lists into a decreasing
   accumulator; w bounds the accumulator from above and the inputs from
   below. *)
let rec rev_merge w xs ys acc =
  match xs with
  | [] -> rev_onto_up w ys acc
  | x :: xs2 ->
    (match ys with
     | [] -> rev_onto_up w (x :: xs2) acc
     | y :: ys2 ->
       if x <= y then rev_merge x xs2 (y :: ys2) (x :: acc)
       else rev_merge y (x :: xs2) ys2 (y :: acc))

(* Splits a list into alternating halves. *)
let rec halve xs =
  match xs with
  | [] -> ([], [])
  | x :: rest ->
    (match rest with
     | [] -> ([x], [])
     | y :: rest2 ->
       let (a, b) = halve rest2 in
       (x :: a, y :: b))

let rec stablesort xs =
  match xs with
  | [] -> []
  | x1 :: rest ->
    (match rest with
     | [] -> [x1]
     | x2 :: rest2 ->
       let (a, b) = halve (x1 :: x2 :: rest2) in
       let sa = stablesort a in
       let sb = stablesort b in
       (match sa with
        | [] -> sb
        | a1 :: sa2 ->
          (match sb with
           | [] -> a1 :: sa2
           | b1 :: sb2 ->
             let w = if a1 <= b1 then a1 else b1 in
             let down = rev_merge w (a1 :: sa2) (b1 :: sb2) [] in
             (match down with
              | [] -> []
              | d1 :: d2 -> rev_onto_down d1 (d1 :: d2) []))))
