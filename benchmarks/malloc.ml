(* Malloc: the resource manager of Fig. 11 (Fig. 10 row `Malloc`).
   Property: Alloc — the "world" (m, us, fs) keeps every address on the
   used list marked 1 in the bitmap, every address on the free list
   marked 0, and both lists duplicate-free (non-aliasing via int list≠). *)

(* Removes an address from a duplicate-free list. *)
let rec remove a xs =
  match xs with
  | [] -> []
  | x :: rest -> if x = a then rest else x :: remove a rest

(* Picks a free address, marks it used, moves it to the used list. *)
let alloc w =
  let (m, us, fs) = w in
  match fs with
  | [] -> diverge ()
  | p :: fs2 ->
    let m2 = set m p 1 in
    ((m2, p :: us, fs2), p)

(* Returns an address to the free list (the address must be in use). *)
let free w a =
  let (m, us, fs) = w in
  if get m a = 1 then
    let m2 = set m a 0 in
    let us2 = remove a us in
    (m2, us2, a :: fs)
  else diverge ()
