(* Redblack: red-black tree insertion (Fig. 10 row `Redblack`, after
   Dunfield / Okasaki).
   Properties: Color (no red node has a red child — the `ok` measure),
   Balance (equal black heights — the `Bh` refinement), BST. *)

type color = Rc | Bc
type 'a rbt = L | T of color * 'a rbt * 'a * 'a rbt

(* Rebalances a black node whose *left* subtree may have a root-level
   red-red violation. *)
let lbalance x a b =
  match a with
  | L -> T (Bc, a, x, b)
  | T (ca, a1, y, a2) ->
    (match ca with
     | Bc -> T (Bc, a, x, b)
     | Rc ->
       (match a1 with
        | T (c1, a11, z, a12) ->
          (match c1 with
           | Rc -> T (Rc, T (Bc, a11, z, a12), y, T (Bc, a2, x, b))
           | Bc ->
             (match a2 with
              | T (c2, a21, w, a22) ->
                (match c2 with
                 | Rc -> T (Rc, T (Bc, a1, y, a21), w, T (Bc, a22, x, b))
                 | Bc -> T (Bc, a, x, b))
              | L -> T (Bc, a, x, b)))
        | L ->
          (match a2 with
           | T (c2, a21, w, a22) ->
             (match c2 with
              | Rc -> T (Rc, T (Bc, a1, y, a21), w, T (Bc, a22, x, b))
              | Bc -> T (Bc, a, x, b))
           | L -> T (Bc, a, x, b))))

(* Symmetric: the right subtree may have a root-level violation. *)
let rbalance x a b =
  match b with
  | L -> T (Bc, a, x, b)
  | T (cb, b1, y, b2) ->
    (match cb with
     | Bc -> T (Bc, a, x, b)
     | Rc ->
       (match b2 with
        | T (c2, b21, z, b22) ->
          (match c2 with
           | Rc -> T (Rc, T (Bc, a, x, b1), y, T (Bc, b21, z, b22))
           | Bc ->
             (match b1 with
              | T (c1, b11, w, b12) ->
                (match c1 with
                 | Rc -> T (Rc, T (Bc, a, x, b11), w, T (Bc, b12, y, b2))
                 | Bc -> T (Bc, a, x, b))
              | L -> T (Bc, a, x, b)))
        | L ->
          (match b1 with
           | T (c1, b11, w, b12) ->
             (match c1 with
              | Rc -> T (Rc, T (Bc, a, x, b11), w, T (Bc, b12, y, b2))
              | Bc -> T (Bc, a, x, b))
           | L -> T (Bc, a, x, b))))

let rec ins x t =
  match t with
  | L -> T (Rc, L, x, L)
  | T (c, a, y, b) ->
    if x < y then
      (match c with
       | Bc -> lbalance y (ins x a) b
       | Rc -> T (Rc, ins x a, y, b))
    else if y < x then
      (match c with
       | Bc -> rbalance y a (ins x b)
       | Rc -> T (Rc, a, y, ins x b))
    else T (c, a, y, b)

let insert x t =
  match ins x t with
  | L -> diverge ()
  | T (c, a, y, b) -> T (Bc, a, y, b)
