(* Vec: extensible functional vectors over balanced trees (Fig. 10 row
   `Vec`, after de Alfaro).
   Properties: Balance (subtree heights within two, height field exact),
   Len1 (every get/set receives an index within bounds — expressed as
   preconditions over the `vlen` measure), Len2 (the function passed to
   the iterator is only applied to in-range indices). *)

type 'a vec = Empty | Node of 'a vec * 'a * 'a vec * int * int

let vheight v =
  match v with
  | Empty -> 0
  | Node (l, x, r, h, n) -> h

let length v =
  match v with
  | Empty -> 0
  | Node (l, x, r, h, n) -> n

(* Builds a node from subtrees within the balance tolerance. *)
let vcreate l x r =
  let hl = vheight l in
  let hr = vheight r in
  let h = if hl < hr then hr + 1 else hl + 1 in
  Node (l, x, r, h, length l + length r + 1)

(* Rebalances after one end-insertion (difference at most three). *)
let vbal l x r =
  let hl = vheight l in
  let hr = vheight r in
  if hl > hr + 2 then
    (match l with
     | Empty -> diverge ()
     | Node (ll, lx, lr, lh, ln) ->
       if vheight ll >= vheight lr then vcreate ll lx (vcreate lr x r)
       else
         (match lr with
          | Empty -> diverge ()
          | Node (lrl, lrx, lrr, lrh, lrn) ->
            vcreate (vcreate ll lx lrl) lrx (vcreate lrr x r)))
  else if hr > hl + 2 then
    (match r with
     | Empty -> diverge ()
     | Node (rl, rx, rr, rh, rn) ->
       if vheight rr >= vheight rl then vcreate (vcreate l x rl) rx rr
       else
         (match rl with
          | Empty -> diverge ()
          | Node (rll, rlx, rlr, rlh, rln) ->
            vcreate (vcreate l x rll) rlx (vcreate rlr rx rr)))
  else vcreate l x r

(* Appends an element at the end. *)
let rec append v x =
  match v with
  | Empty -> Node (Empty, x, Empty, 1, 1)
  | Node (l, y, r, h, n) -> vbal l y (append r x)

(* Reads index i (Len1: 0 <= i < length v). *)
let rec get_elt v i =
  match v with
  | Empty -> diverge ()
  | Node (l, x, r, h, n) ->
    let nl = length l in
    if i < nl then get_elt l i
    else if i = nl then x
    else get_elt r (i - nl - 1)

(* Replaces index i (Len1). *)
let rec set_elt v i x =
  match v with
  | Empty -> diverge ()
  | Node (l, y, r, h, n) ->
    let nl = length l in
    if i < nl then Node (set_elt l i x, y, r, h, n)
    else if i = nl then Node (l, x, r, h, n)
    else Node (l, y, set_elt r (i - nl - 1) x, h, n)

(* Iterates f over indices in order (Len2: f sees only valid indices). *)
let rec iteri_from base v f =
  match v with
  | Empty -> ()
  | Node (l, x, r, h, n) ->
    let nl = length l in
    iteri_from base l f;
    f (base + nl) x;
    iteri_from (base + nl + 1) r f

let iteri v f = iteri_from 0 v f
