(* Heap: a leftist heap (Fig. 10 row `Heap`, after Filliâtre).
   Properties: Heap (heap order: every descendant is at least its
   ancestor), Min (extractmin returns a lower bound of the remaining
   heap), Set (merge/insert preserve the multiset of elements, stated
   with the `helts` set measure). *)

type 'a heap = E | T of int * 'a * 'a heap * 'a heap

let rank h =
  match h with
  | E -> 0
  | T (r, x, l, rr) -> r

(* Rebuilds a node, keeping the shorter spine on the right. *)
let maket x a b =
  if rank a >= rank b then T (rank b + 1, x, a, b)
  else T (rank a + 1, x, b, a)

let rec merge h1 h2 =
  match h1 with
  | E -> h2
  | T (r1, x, a1, b1) ->
    (match h2 with
     | E -> T (r1, x, a1, b1)
     | T (r2, y, a2, b2) ->
       if x <= y then maket x a1 (merge b1 (T (r2, y, a2, b2)))
       else maket y a2 (merge (T (r1, x, a1, b1)) b2))

let insert x h = merge (T (1, x, E, E)) h

let findmin h =
  match h with
  | E -> diverge ()
  | T (r, x, l, rr) -> x

let extractmin h =
  match h with
  | E -> diverge ()
  | T (r, x, l, rr) -> (x, merge l rr)
