(* Splayheap: Okasaki's splay-tree heap (Fig. 10 row `Splayheap`).
   Properties: BST (binary search order), Min (extractmin returns a lower
   bound of the rest), Set (partition/insert preserve elements). *)

type 'a tree = E | T of 'a tree * 'a * 'a tree

(* Splits a tree around a pivot: (elements <= pivot, elements > pivot),
   both search-ordered, with the classic double rotations. *)
let rec partition pivot t =
  match t with
  | E -> (E, E)
  | T (a, x, b) ->
    if x <= pivot then
      (match b with
       | E -> (T (a, x, E), E)
       | T (b1, y, b2) ->
         if y <= pivot then
           let (small, big) = partition pivot b2 in
           (T (T (a, x, b1), y, small), big)
         else
           let (small, big) = partition pivot b1 in
           (T (a, x, small), T (big, y, b2)))
    else
      (match a with
       | E -> (E, T (E, x, b))
       | T (a1, y, a2) ->
         if y <= pivot then
           let (small, big) = partition pivot a2 in
           (T (a1, y, small), T (big, x, b))
         else
           let (small, big) = partition pivot a1 in
           (small, T (big, y, T (a2, x, b))))

let insert x t =
  let (a, b) = partition x t in
  T (a, x, b)

let rec extractmin t =
  match t with
  | E -> diverge ()
  | T (a, x, b) ->
    (match a with
     | E -> (x, b)
     | T (a1, y, a2) ->
       let (m, rest) = extractmin (T (a1, y, a2)) in
       (m, T (rest, x, b)))

(* The Set property of insert, stated separately. *)
let insert_keeps_elts x t = insert x t
