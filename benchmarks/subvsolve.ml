(* Subvsolve: graph-based bit-level type inference (Fig. 10 row
   `Subvsolve`, after Jhala & Majumdar, FSE 2006).
   Bit-level types are sequences of blocks; mask/shift operations split a
   block into sub-blocks (its successors in a block graph), and value
   flow makes distinct types share successor blocks. Fresh blocks always
   receive identifiers larger than their parents', so the block graph is
   acyclic — the same DAG shape as (3) in §2.2. *)

(* Splits block `b` of the graph: two fresh sub-blocks `n` and `n + 1`
   are created and recorded as its successors; returns the new graph and
   the bumped allocator. *)
let split g n b =
  let g1 = set g n [] in
  let g2 = set g1 (n + 1) [] in
  let succs = get g2 b in
  let g3 = set g2 b (n :: (n + 1) :: succs) in
  (g3, n + 2)

(* Value flow: block `b` additionally flows into the fresh block `n`
   (sharing: several blocks may point at the same sub-block). *)
let share g n b =
  let g1 = set g n [] in
  let succs = get g1 b in
  let g2 = set g1 b (n :: succs) in
  (g2, n + 1)

(* Unifies the successor lists of two blocks created at the same level:
   both point to a common fresh representative. *)
let unify g n a b =
  let g1 = set g n [] in
  let sa = get g1 a in
  let g2 = set g1 a (n :: sa) in
  let sb = get g2 b in
  let g3 = set g2 b (n :: sb) in
  (g3, n + 1)

(* Solves a worklist of `k` split requests over randomly chosen blocks —
   the driver loop of the inference engine (compare Fig. 4's build_dag). *)
let rec solve g n k =
  if k <= 0 then (g, n)
  else
    let b = random 0 in
    if b < 0 then (g, n)
    else if b >= n then (g, n)
    else
      let (g2, n2) = split g n b in
      solve g2 n2 (k - 1)
