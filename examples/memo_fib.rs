//! Polymorphic refinements (§2.2, Fig. 3): the memoized fibonacci.
//!
//! The memo table's polymorphic refinement is instantiated so that every
//! key `i` maps to a value `≥ 1` and `≥ i − 1`; the verifier concludes
//! `fib i ≥ i − 1` — and the interpreter confirms memoization works.
//!
//! ```text
//! cargo run --release --example memo_fib
//! ```

use dsolve_suite::dsolve::Job;
use dsolve_suite::logic::Symbol;
use dsolve_suite::nanoml::{
    builtin_env, parse_program, resolve_program, DataEnv, Evaluator, Value,
};

const SRC: &str = r#"
let fib i =
  let rec f t0 n =
    if mem t0 n then (t0, get t0 n)
    else if n <= 2 then (t0, 1)
    else
      let (t1, r1) = f t0 (n - 1) in
      let (t2, r2) = f t1 (n - 2) in
      let r = r1 + r2 in
      (set t2 n r, r)
  in
  let (tfin, r) = f (new 17) i in
  r

let result = fib 40
"#;

const MLQ: &str = r#"
val fib : i : int -> {VV : int | (1 <= VV) && (i - 1 <= VV)}
"#;

const QUALS: &str = r#"
qualif One : 1 <= VV
qualif Fib : _ - 1 <= VV
"#;

fn main() {
    let job = Job::from_sources("memo_fib", SRC, MLQ, QUALS);
    let res = job.run().expect("front end");
    assert!(
        res.is_safe(),
        "{:?}",
        res.result.errors.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    println!(
        "verified: fib i >= 1 and fib i >= i - 1  ({} qualifiers, {:.2}s)",
        res.annotations,
        res.time.as_secs_f64()
    );

    let prog = parse_program(SRC).unwrap();
    let mut data = DataEnv::with_builtins();
    data.add_program(&prog.datatypes).unwrap();
    let prog = resolve_program(&prog, &data).unwrap();
    let env = Evaluator::new().eval_program(&prog, &builtin_env()).unwrap();
    let v = env[&Symbol::new("result")].clone();
    println!("fib 40 = {v:?} (memoized: linear, not exponential)");
    assert_eq!(v, Value::Int(102_334_155));
}
