//! Recursive refinements (§4): sortedness of insertion sort, positive
//! and negative, plus a differential check between the verifier's
//! verdict and actual runtime behaviour on random inputs.
//!
//! ```text
//! cargo run --release --example sorting_verifier
//! ```

use dsolve_suite::dsolve::Job;
use dsolve_suite::logic::Symbol;
use dsolve_suite::nanoml::{
    builtin_env, parse_program, resolve_program, DataEnv, Evaluator, Value,
};

const GOOD: &str = r#"
let rec insert x vs =
  match vs with
  | [] -> [x]
  | y :: ys -> if x < y then x :: y :: ys else y :: insert x ys

let rec insertsort xs =
  match xs with
  | [] -> []
  | x :: rest -> insert x (insertsort rest)
"#;

const MLQ: &str = r#"
measure elts : 'a list -> set =
| Nil -> empty
| Cons (x, xs) -> union(single(x), elts(xs))

rho Sorted on list =
| Cons (h, t) -> t : [ Cons (h2, t2) -> h2 : { h <= VV } ]

val insertsort : xs : 'a list -> {VV : 'a list @Sorted | elts(VV) = elts(xs)}
"#;

const QUALS: &str = r#"
qualif Ub : _ <= VV
qualif EltsEq : elts(VV) = elts(_)
qualif EltsCons : elts(VV) = union(single(_), elts(_))
"#;

fn main() {
    // The correct sort verifies...
    let good = Job::from_sources("insertsort", GOOD, MLQ, QUALS)
        .run()
        .expect("front end");
    assert!(
        good.is_safe(),
        "{:?}",
        good.result.errors.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    println!("verified: insertsort returns a sorted permutation of its input");
    if let Some(s) = good.result.inferred.get(&Symbol::new("insert")) {
        println!("  inferred insert :: {s}");
    }

    // ...and the classic flipped-comparison bug is caught.
    let buggy_src = GOOD.replace("if x < y", "if x > y");
    let buggy = Job::from_sources("buggy", &buggy_src, MLQ, QUALS)
        .run()
        .expect("front end");
    assert!(!buggy.is_safe());
    println!(
        "rejected the flipped-comparison bug: {}",
        buggy.result.errors[0]
    );

    // Differential: run the verified sort on pseudo-random inputs and
    // check the runtime results agree with the verdict.
    let prog = parse_program(GOOD).unwrap();
    let mut data = DataEnv::with_builtins();
    data.add_program(&prog.datatypes).unwrap();
    let prog = resolve_program(&prog, &data).unwrap();
    let env = Evaluator::new().eval_program(&prog, &builtin_env()).unwrap();
    let sortf = env[&Symbol::new("insertsort")].clone();

    let mut seed = 0x9e3779b97f4a7c15u64;
    for case in 0..50 {
        let len = (case % 17) as usize;
        let mut input = Vec::new();
        for _ in 0..len {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            input.push(Value::Int((seed % 1000) as i64 - 500));
        }
        let mut ev = Evaluator::new();
        let out = ev.apply(sortf.clone(), Value::list(input.clone())).unwrap();
        let got: Vec<i64> = out
            .as_list()
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        let mut want: Vec<i64> = input.iter().map(|v| v.as_int().unwrap()).collect();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
    println!("differential check: 50 random inputs sorted correctly at runtime");
}
