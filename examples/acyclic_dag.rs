//! Recursive + polymorphic refinements together (§2.2, Fig. 4): building
//! a directed graph whose edges always point to strictly larger node
//! ids — hence acyclic — checked both statically (the `DAG` map type of
//! eq. (3)) and dynamically (a runtime scan over the built graph).
//!
//! ```text
//! cargo run --release --example acyclic_dag
//! ```

use dsolve_suite::dsolve::Job;
use dsolve_suite::logic::Symbol;
use dsolve_suite::nanoml::{
    builtin_env, parse_program, resolve_program, DataEnv, Evaluator, Value,
};

const SRC: &str = r#"
let rec build_dag k n g =
  if k <= 0 then (n, g)
  else
    let node = random 0 in
    if node < 0 then (n, g)
    else if node >= n then (n, g)
    else
      let succs = get g node in
      let g2 = set g node ((n + 1) :: succs) in
      build_dag (k - 1) (n + 1) g2

let g0 = set (new 17) 0 []
let built = build_dag 50 1 g0
"#;

const MLQ: &str = r#"
val build_dag : k : int -> n : int
  -> g : (int, {VV : int list elems { KEY < VV }}) map
  -> (int * (int, {VV : int list elems { KEY < VV }}) map)
"#;

const QUALS: &str = r#"
qualif Succ : KEY < VV
qualif UbN : VV < _
"#;

fn main() {
    // Static: each node's successors exceed it, so no cycles (eq. (3)).
    let res = Job::from_sources("acyclic_dag", SRC, MLQ, QUALS)
        .run()
        .expect("front end");
    assert!(
        res.is_safe(),
        "{:?}",
        res.result.errors.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    println!("verified: build_dag maintains the DAG invariant of §2.2 (3)");

    // Dynamic: run it and double-check every edge points forward.
    let prog = parse_program(SRC).unwrap();
    let mut data = DataEnv::with_builtins();
    data.add_program(&prog.datatypes).unwrap();
    let prog = resolve_program(&prog, &data).unwrap();
    let env = Evaluator::new().eval_program(&prog, &builtin_env()).unwrap();
    let Value::Tuple(parts) = env[&Symbol::new("built")].clone() else {
        panic!("expected an (n, g) pair")
    };
    let n = parts[0].as_int().unwrap();
    let Value::Map(g) = &parts[1] else { panic!("expected a map") };
    let mut edges = 0usize;
    for (k, v) in g.iter() {
        let key = k.as_int().unwrap();
        for succ in v.as_list().unwrap() {
            let s = succ.as_int().unwrap();
            assert!(s > key, "edge {key} -> {s} would break acyclicity");
            edges += 1;
        }
    }
    println!("ran build_dag: {n} nodes, {edges} edges, all forward - acyclic");
}
