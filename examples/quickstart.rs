//! Quickstart: verify and run Fig. 1 of the paper.
//!
//! `harmonic` divides by every element of `range 1 n`; the verifier
//! proves every divisor is nonzero from the qualifier set
//! `Q = {0 < ν, ★ ≤ ν}`, and the interpreter then runs the program.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dsolve_suite::liquid::{verify_source, MeasureEnv};
use dsolve_suite::logic::{parse_pred, Qualifier, Symbol};
use dsolve_suite::nanoml::{
    builtin_env, parse_program, resolve_program, DataEnv, Evaluator, Value,
};

const SRC: &str = r#"
let rec range i j =
  if i > j then []
  else
    let is = range (i + 1) j in
    i :: is

let rec fold_left f acc xs =
  match xs with
  | [] -> acc
  | x :: rest -> fold_left f (f acc x) rest

let harmonic n =
  let ds = range 1 n in
  fold_left (fun s k -> s + 10000 / k) 0 ds

let result = harmonic 10
"#;

fn main() {
    // 1. Verify: division safety via liquid type inference.
    let quals = vec![
        Qualifier::new("Pos", parse_pred("0 < VV").unwrap()),
        Qualifier::new("Ub", parse_pred("_ <= VV").unwrap()),
    ];
    let outcome = verify_source(SRC, MeasureEnv::new(), quals, vec![]).expect("front end");
    assert!(
        outcome.is_safe(),
        "verification failed: {:?}",
        outcome.errors.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    println!("verified: every division in `harmonic` is safe");
    println!(
        "  ({} constraints, {} liquid variables, {} SMT queries)",
        outcome.num_constraints, outcome.stats.kvars, outcome.stats.smt_queries
    );
    for name in ["range", "harmonic"] {
        if let Some(s) = outcome.inferred.get(&Symbol::new(name)) {
            println!("  {name} :: {s}");
        }
    }

    // 2. Run the very same program.
    let prog = parse_program(SRC).unwrap();
    let mut data = DataEnv::with_builtins();
    data.add_program(&prog.datatypes).unwrap();
    let prog = resolve_program(&prog, &data).unwrap();
    let env = Evaluator::new().eval_program(&prog, &builtin_env()).unwrap();
    let result = env[&Symbol::new("result")].clone();
    println!("harmonic 10 = {result:?} (scaled by 10000)");
    assert_eq!(result, Value::Int(29288));
}
