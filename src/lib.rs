//! Umbrella crate re-exporting the dsolve-rs workspace.
pub use dsolve;
pub use dsolve_liquid as liquid;
pub use dsolve_logic as logic;
pub use dsolve_nanoml as nanoml;
pub use dsolve_smt as smt;
