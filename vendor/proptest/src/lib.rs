//! A small, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` cannot be resolved. This crate implements the subset of its
//! API that the workspace's property tests use — strategies, combinators,
//! `prop_recursive`, `prop::collection::vec`, and the `proptest!` macro —
//! on top of a deterministic xorshift PRNG seeded from the test name, so
//! failures are reproducible run-to-run.
//!
//! Intentional differences from real proptest:
//!
//! * no shrinking — on failure the generating inputs are printed as-is;
//! * generation is uniform rather than size-aware;
//! * the PRNG seed is fixed per test (derived from the test's module
//!   path), not persisted through a regressions file.

use std::fmt;
use std::rc::Rc;

/// Deterministic xorshift64* PRNG.
///
/// Each `proptest!`-generated test constructs one seeded from its own
/// fully-qualified name, so runs are reproducible and tests are
/// independent of execution order.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test name (FNV-1a hash).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: if h == 0 { 0x9e37_79b9_7f4a_7c15 } else { h },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform value in `[lo, hi)` over a widened domain.
    pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty range strategy");
        let span = (hi - lo) as u128;
        lo + (self.next_u64() as u128 % span) as i128
    }
}

/// A generator of test inputs. The trait mirrors real proptest's
/// `Strategy`, minus shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Type-erases the strategy behind a cheap, clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into one producing larger values. Recursion
    /// depth is bounded by `depth`; the size hints are accepted for API
    /// compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        current
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among several strategies of the same value type.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: fmt::Debug> Union<V> {
    /// Creates a union; `options` must be nonempty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The strategy generating any value of `T`, as `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification: an exact size or a range of sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_range(self.size.lo as i128, self.size.hi_exclusive as i128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration, set via `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Defines property tests; mirrors real proptest's macro shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let mut inputs = String::new();
                $(
                    let generated = $crate::Strategy::generate(&($strat), &mut rng);
                    inputs.push_str(concat!(stringify!($pat), " = "));
                    inputs.push_str(&format!("{:?}; ", generated));
                    let $pat = generated;
                )+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest {} failed at case {}/{} with inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        inputs
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };

    /// Namespace alias so `prop::collection::vec` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("some::test");
        let mut b = crate::TestRng::for_test("some::test");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(-3i64..=3), &mut rng);
            assert!((-3..=3).contains(&v));
            let u = Strategy::generate(&(0usize..5), &mut rng);
            assert!(u < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_range(xs in prop::collection::vec(0i64..10, 2..4)) {
            prop_assert!(xs.len() == 2 || xs.len() == 3);
        }

        #[test]
        fn oneof_picks_an_arm(v in prop_oneof![Just(1i64), Just(2i64)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }
}
