//! A small, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the real
//! `criterion` cannot be resolved. This crate implements the subset of
//! its API that the workspace's benches use — groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — as a plain wall-clock harness that prints
//! min/mean/max per benchmark. There is no statistical analysis, outlier
//! rejection, or HTML report.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; sampling is iteration-count based.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from the parameter's `Display` form.
    pub fn from_parameter(p: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: p.to_string() }
    }

    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl fmt::Display, p: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{p}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of samples (after one
    /// untimed warm-up call).
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{label:<40} min {min:>12?}  mean {mean:>12?}  max {max:>12?}  ({} samples)",
        b.samples.len()
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }
}
